"""Serving-level analysis: load sweeps, fault injection and queueing theory.

:class:`ServingAnalyzer` drives the request-level simulator
(:mod:`repro.serving`) over a sweep of offered loads on a STAR chip fleet
and tabulates what a capacity planner needs — sustained throughput, tail
latencies, queue depths, fleet utilization and energy per query — plus an
M/D/1 Pollaczek–Khinchine cross-validation row for the single-chip,
no-batching limit (the regime where the simulator has a closed form to
answer to).  This is the E10 experiment.

:class:`FaultServingAnalyzer` is the E11 experiment: the same fleet under
chip failure/repair processes (:mod:`repro.serving.faults`), sweeping
steady-state capacity loss with two control policies per point — graceful
degradation (deadline shedding, bounded queue, degraded batch cap) versus
the unprotected queue — against the fault-free baseline, so the report
shows directly what admission control buys when hardware misbehaves.

:class:`ShardedScalingAnalyzer` measures the multi-process scale-out
(:mod:`repro.serving.sharded`): wall-clock throughput of the same
workload at growing shard counts, with parallel efficiency against the
one-shard run.  Its table is wall-clock (machine-dependent), so it backs
the README scaling table and the ``examples/sharded_serving.py`` demo but
is deliberately not a golden experiment.

:class:`SLOServingAnalyzer` is the E12 experiment — the serving control
plane end to end.  Three sections: an EDF-vs-FIFO load sweep on bursty
(on/off MMPP) two-class traffic where deadline skew makes dispatch order
matter; a closed-loop run of think-time clients cross-validated against
the machine-repair M/M/1//N closed form; and a diurnal autoscaling
comparison where a hysteresis controller parks chips into non-volatile
deep sleep overnight and the energy ledger shows what that buys against
the always-on fleet.

:class:`TieredServingAnalyzer` is the E13 experiment: the same fleet and
request stream served at growing fidelity-sampling fractions — analytic
only, then 5%/25%/100% of dispatches priced on cached executed-schedule
templates with per-layer jitter — showing pipeline-level tail variation
propagating into request-level p99 at near-analytic cost.

:class:`RoutingServingAnalyzer` is the E14 experiment: a skewed
sequence-length trace (mostly short interactive requests, a heavy minority
of long ones) over a mixed big/small-tile fleet, served once per routing
arm — the global-FIFO baseline, then per-chip queues under round-robin,
join-shortest-queue, and shortest-expected-delay routing (with and
without work stealing).  The global queue pads every mixed batch to its
longest member and routinely parks long sequences on small-tile chips, so
it collapses at loads the cost-oracle router sustains: SED prices each
candidate on each chip's batch-aware pricing, sending long requests to
the big-tile chip, and stealing keeps the fleet work-conserving on top.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

from repro.serving.arrivals import (
    ClosedLoopClients,
    DayCurveArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.serving.autoscale import Autoscaler
from repro.serving.batcher import NO_BATCHING, DynamicBatcher
from repro.serving.faults import AdmissionController, FaultInjector, RetryPolicy
from repro.serving.fleet import (
    ChipFleet,
    ExponentialServiceModel,
    FixedServiceModel,
    LinearServiceModel,
    PricingCache,
    ServiceModel,
    StarServiceModel,
)
from repro.serving.report import ServingReport
from repro.serving.routing import NetworkModel, Router
from repro.serving.sharded import ShardedServingSimulator
from repro.serving.simulator import ServingSimulator
from repro.serving.slo import SLOClass, SLOPolicy
from repro.serving.theory import MachineRepairQueue, MD1Queue
from repro.utils.stats import relative_error
from repro.utils.validation import require_positive

__all__ = [
    "ServingSweepRow",
    "BatchAmortisationRow",
    "BatchCapRow",
    "MD1ValidationRow",
    "ServingAnalyzer",
    "FaultSweepRow",
    "FaultServingAnalyzer",
    "ShardScalingRow",
    "ShardedScalingAnalyzer",
    "SLOSweepRow",
    "ClosedLoopValidationRow",
    "AutoscaleComparisonRow",
    "SLOServingAnalyzer",
    "TieredFidelityRow",
    "TieredServingAnalyzer",
    "RoutingPolicyRow",
    "RoutingServingAnalyzer",
    "sleep_capable_star_model",
]


@dataclass(frozen=True)
class ServingSweepRow:
    """One offered-load point of the serving sweep."""

    offered_rate_rps: float
    load_factor: float
    report: ServingReport

    @property
    def throughput_rps(self) -> float:
        """Sustained completion rate at this load."""
        return self.report.throughput_rps


@dataclass(frozen=True)
class BatchAmortisationRow:
    """Batch service time vs the linear ``batch x single`` price."""

    batch_size: int
    service_s: float
    per_request_s: float
    linear_s: float

    @property
    def amortisation(self) -> float:
        """Batch service over the linear price (1.0 = no batching benefit)."""
        return self.service_s / self.linear_s if self.linear_s > 0 else 1.0


@dataclass(frozen=True)
class BatchCapRow:
    """One ``DynamicBatcher`` cap at a fixed offered load, for both pricings."""

    max_batch_size: int
    report: ServingReport
    linear_report: ServingReport

    @property
    def throughput_rps(self) -> float:
        """Sustained completion rate under batch-aware pricing."""
        return self.report.throughput_rps


@dataclass(frozen=True)
class MD1ValidationRow:
    """Simulated vs Pollaczek–Khinchine mean wait in the M/D/1 limit."""

    arrival_rate_rps: float
    utilization: float
    simulated_wait_s: float
    theory_wait_s: float

    @property
    def deviation(self) -> float:
        """Relative error of the simulated mean wait."""
        return relative_error(self.simulated_wait_s, self.theory_wait_s)


class ServingAnalyzer:
    """Load sweep + M/D/1 validation of a STAR serving fleet.

    Parameters
    ----------
    service_model:
        Batch pricing; defaults to the analytical-schedule STAR accelerator
        serving BERT-base.
    num_chips:
        Fleet size for the load sweep.
    batcher:
        Dispatch policy for the load sweep (the M/D/1 validation always
        runs single-chip, no-batching).
    seq_len:
        Served sequence length.
    num_requests:
        Requests per simulated load point.
    seed:
        Seed of the Poisson arrival streams.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 4,
        batcher: DynamicBatcher = NO_BATCHING,
        seq_len: int = 128,
        num_requests: int = 2000,
        seed: int = 0,
    ) -> None:
        require_positive(num_chips, "num_chips")
        require_positive(num_requests, "num_requests")
        self.service_model = service_model or StarServiceModel(seq_len=seq_len)
        self.num_chips = num_chips
        self.batcher = batcher
        self.seq_len = seq_len
        self.num_requests = num_requests
        self.seed = seed

    # ------------------------------------------------------------------ #
    # capacity and sweeps
    # ------------------------------------------------------------------ #
    def request_service_s(self) -> float:
        """Single-request service time of one chip at the analyzer's length."""
        return self.service_model.batch_latency_s(1, self.seq_len)

    def fleet_capacity_rps(self) -> float:
        """Upper-bound completion rate of the fleet at batch size 1."""
        return self.num_chips / self.request_service_s()

    def row_for(self, load_factor: float) -> ServingSweepRow:
        """Simulate one offered load, expressed as a fraction of capacity."""
        require_positive(load_factor, "load_factor")
        rate = load_factor * self.fleet_capacity_rps()
        arrivals = PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)
        fleet = ChipFleet(self.service_model, num_chips=self.num_chips)
        report = ServingSimulator(fleet, self.batcher).run(
            arrivals.generate(self.num_requests)
        )
        return ServingSweepRow(offered_rate_rps=rate, load_factor=load_factor, report=report)

    def sweep_rows(self, load_factors: tuple[float, ...] = (0.3, 0.6, 0.9)) -> list[ServingSweepRow]:
        """The load sweep at several fractions of fleet capacity."""
        return [self.row_for(factor) for factor in load_factors]

    # ------------------------------------------------------------------ #
    # batch amortisation
    # ------------------------------------------------------------------ #
    def amortisation_rows(
        self, batch_sizes: tuple[int, ...] = (1, 4, 16, 32)
    ) -> list[BatchAmortisationRow]:
        """Batch service times against the linear ``batch x single`` price.

        Under batch-aware pricing a dispatched batch programs each
        stationary operand once and double-buffers rows beyond the first
        request, so the ratio falls below 1 as the batch grows; the legacy
        linear model would sit at exactly 1.0 everywhere.
        """
        single = self.service_model.batch_latency_s(1, self.seq_len)
        rows = []
        for batch in batch_sizes:
            require_positive(batch, "batch size")
            service = self.service_model.batch_latency_s(batch, self.seq_len)
            rows.append(
                BatchAmortisationRow(
                    batch_size=batch,
                    service_s=service,
                    per_request_s=service / batch,
                    linear_s=batch * single,
                )
            )
        return rows

    def batch_cap_rows(
        self,
        caps: tuple[int, ...] = (1, 8, 32),
        load_factor: float = 0.8,
    ) -> list[BatchCapRow]:
        """Raise the ``DynamicBatcher`` cap at one fixed offered load.

        The offered rate is ``load_factor`` of the *batch-32 amortised*
        fleet capacity — a load the unbatched fleet cannot sustain — and
        every cap is simulated twice: once on the batch-aware service
        model and once on its :class:`~repro.serving.fleet.LinearServiceModel`
        wrapper, so the table shows what amortised pricing buys at equal
        hardware and equal traffic.
        """
        require_positive(load_factor, "load_factor")
        amortised_capacity = self.num_chips * 32 / self.service_model.batch_latency_s(
            32, self.seq_len
        )
        rate = load_factor * amortised_capacity
        arrivals = PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)
        requests = arrivals.generate(self.num_requests)
        rows = []
        for cap in caps:
            require_positive(cap, "batcher cap")
            batcher = DynamicBatcher(max_batch_size=cap, max_wait_s=self.batcher.max_wait_s)
            report = ServingSimulator(
                ChipFleet(self.service_model, num_chips=self.num_chips), batcher
            ).run(requests)
            linear_report = ServingSimulator(
                ChipFleet(LinearServiceModel(self.service_model), num_chips=self.num_chips),
                batcher,
            ).run(requests)
            rows.append(
                BatchCapRow(max_batch_size=cap, report=report, linear_report=linear_report)
            )
        return rows

    # ------------------------------------------------------------------ #
    # M/D/1 cross-validation
    # ------------------------------------------------------------------ #
    def md1_validation(
        self, utilization: float = 0.7, num_requests: int = 30000
    ) -> MD1ValidationRow:
        """Single-chip no-batching run vs the Pollaczek–Khinchine formula."""
        service = self.request_service_s()
        rate = utilization / service
        arrivals = PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)
        fleet = ChipFleet(self.service_model, num_chips=1)
        report = ServingSimulator(fleet, NO_BATCHING).run(arrivals.generate(num_requests))
        theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
        return MD1ValidationRow(
            arrival_rate_rps=rate,
            utilization=utilization,
            simulated_wait_s=report.mean_wait_s,
            theory_wait_s=theory.mean_wait_s,
        )

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def format_amortisation_table(
        self, batch_sizes: tuple[int, ...] = (1, 4, 16, 32)
    ) -> str:
        """Printable batch-amortisation table."""
        lines = [
            f"{'batch':>6} {'service (ms)':>13} {'per-req (ms)':>13} "
            f"{'linear (ms)':>12} {'x linear':>9}"
        ]
        for row in self.amortisation_rows(batch_sizes):
            lines.append(
                f"{row.batch_size:>6d} {row.service_s * 1e3:>13.3f} "
                f"{row.per_request_s * 1e3:>13.3f} {row.linear_s * 1e3:>12.3f} "
                f"{row.amortisation:>9.3f}"
            )
        return "\n".join(lines)

    def format_cap_table(
        self, caps: tuple[int, ...] = (1, 8, 32), load_factor: float = 0.8
    ) -> str:
        """Printable batcher-cap sweep: batch-aware vs linear pricing."""
        lines = [
            f"{'cap':>5} {'served (r/s)':>13} {'p99 (ms)':>9} {'batch':>6} "
            f"{'util':>6} {'mJ/query':>9} | {'linear r/s':>11} {'linear p99':>11}"
        ]
        for row in self.batch_cap_rows(caps, load_factor):
            report, linear = row.report, row.linear_report
            lines.append(
                f"{row.max_batch_size:>5d} {report.throughput_rps:>13.1f} "
                f"{report.p99_latency_s * 1e3:>9.2f} {report.mean_batch_size:>6.2f} "
                f"{report.mean_utilization * 100:>5.1f}% "
                f"{report.energy_per_query_j * 1e3:>9.2f} | "
                f"{linear.throughput_rps:>11.1f} {linear.p99_latency_s * 1e3:>11.2f}"
            )
        return "\n".join(lines)

    def format_table(self, load_factors: tuple[float, ...] = (0.3, 0.6, 0.9)) -> str:
        """Printable sweep table plus the M/D/1 validation line."""
        lines = [
            f"{'load':>6} {'rate (r/s)':>11} {'served':>8} {'p50 (ms)':>9} "
            f"{'p95 (ms)':>9} {'p99 (ms)':>9} {'batch':>6} {'util':>6} {'mJ/query':>9}"
        ]
        for row in self.sweep_rows(load_factors):
            report = row.report
            lines.append(
                f"{row.load_factor:>6.2f} {row.offered_rate_rps:>11.1f} "
                f"{report.throughput_rps:>8.1f} {report.p50_latency_s * 1e3:>9.2f} "
                f"{report.p95_latency_s * 1e3:>9.2f} {report.p99_latency_s * 1e3:>9.2f} "
                f"{report.mean_batch_size:>6.2f} {report.mean_utilization * 100:>5.1f}% "
                f"{report.energy_per_query_j * 1e3:>9.2f}"
            )
        check = self.md1_validation()
        lines.append(
            f"M/D/1 check (1 chip, no batching, rho={check.utilization:.2f}): "
            f"simulated wait {check.simulated_wait_s * 1e3:.3f} ms vs "
            f"P-K {check.theory_wait_s * 1e3:.3f} ms "
            f"({check.deviation * 100:.2f}% off)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class FaultSweepRow:
    """One capacity-loss point of the fault sweep, under both policies.

    ``shed_report`` runs graceful degradation (deadline shedding, bounded
    queue, degraded batch cap); ``queue_report`` runs the same traffic and
    the same failure history with an unprotected queue (retries without a
    deadline, unbounded depth) — the arm whose queue blows up.
    """

    capacity_loss: float
    mtbf_s: float
    shed_report: ServingReport
    queue_report: ServingReport

    @property
    def shed_goodput_rps(self) -> float:
        """Deadline-meeting completion rate under graceful degradation."""
        return self.shed_report.goodput_rps

    @property
    def queue_goodput_rps(self) -> float:
        """Completion rate of the unprotected-queue arm."""
        return self.queue_report.goodput_rps


class FaultServingAnalyzer:
    """Graceful-degradation sweep of a fault-injected STAR fleet (E11).

    The offered load is held at ``load_factor`` of the fleet's amortised
    capacity at the batcher's cap; the sweep raises the steady-state
    capacity loss of a per-chip MTBF/MTTR fault process whose repair cost
    is the chip's full-model operand reprogramming time plus a fixed
    detection/drain overhead.  Each point is simulated twice on identical
    traffic and failure seeds:

    * *shed* — :class:`~repro.serving.faults.RetryPolicy` with a
      per-request deadline, deadline-based queue shedding, a bounded queue
      sized to the deadline (requests deeper than ``deadline x rate``
      cannot make it anyway) and a degraded-mode batch cap;
    * *queue* — retries without deadlines on an unbounded queue: the
      policy-free baseline whose backlog and tail latency blow up once the
      surviving capacity drops below the offered load.

    Parameters mirror :class:`ServingAnalyzer`; ``detection_s`` is the
    non-reprogramming share of each repair and ``deadline_s`` the
    per-request completion SLO of the shedding arm.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 4,
        batcher: DynamicBatcher | None = None,
        seq_len: int = 128,
        num_requests: int = 3000,
        seed: int = 0,
        load_factor: float = 0.95,
        detection_s: float = 0.05,
        deadline_s: float = 0.25,
    ) -> None:
        require_positive(num_chips, "num_chips")
        require_positive(num_requests, "num_requests")
        require_positive(load_factor, "load_factor")
        require_positive(deadline_s, "deadline_s")
        self.service_model = service_model or StarServiceModel(seq_len=seq_len)
        self.num_chips = num_chips
        self.batcher = batcher or DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
        self.seq_len = seq_len
        self.num_requests = num_requests
        self.seed = seed
        self.load_factor = load_factor
        self.detection_s = detection_s
        self.deadline_s = deadline_s

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def fleet(self) -> ChipFleet:
        """The simulated fleet (fresh per run; pricing is cached anyway)."""
        return ChipFleet(self.service_model, num_chips=self.num_chips)

    def repair_s(self) -> float:
        """Per-failure tile-bank reprogramming time of one chip."""
        return self.fleet().reprogram_latency_s(0)

    def downtime_s(self) -> float:
        """Total downtime of one failure: detection/drain plus reprogram."""
        return self.detection_s + self.repair_s()

    def amortised_capacity_rps(self) -> float:
        """Fleet completion-rate bound at the batcher's full batch size."""
        cap = self.batcher.max_batch_size
        return self.num_chips * cap / self.service_model.batch_latency_s(
            cap, self.seq_len
        )

    def offered_rate_rps(self) -> float:
        """The sweep's fixed offered load."""
        return self.load_factor * self.amortised_capacity_rps()

    def _requests(self):
        return PoissonArrivals(
            self.offered_rate_rps(), seq_len=self.seq_len, seed=self.seed
        ).generate(self.num_requests)

    def _shed_policies(self) -> tuple[RetryPolicy, AdmissionController]:
        retry = RetryPolicy(
            max_attempts=3,
            backoff_base_s=2e-3,
            backoff_multiplier=2.0,
            jitter=0.25,
            deadline_s=self.deadline_s,
        )
        admission = AdmissionController(
            max_queue_depth=max(1, math.ceil(self.deadline_s * self.offered_rate_rps())),
            shed_expired=True,
            degraded_max_batch=max(1, self.batcher.max_batch_size // 2),
        )
        return retry, admission

    def _queue_policies(self) -> tuple[RetryPolicy, None]:
        retry = RetryPolicy(
            max_attempts=6,
            backoff_base_s=2e-3,
            backoff_multiplier=2.0,
            jitter=0.25,
            deadline_s=None,
        )
        return retry, None

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #
    def baseline(self) -> ServingReport:
        """The fault-free run every degradation curve is measured against."""
        return ServingSimulator(self.fleet(), self.batcher).run(self._requests())

    def row_for(self, capacity_loss: float) -> FaultSweepRow:
        """Both policy arms at one steady-state capacity-loss level."""
        injector = FaultInjector.for_capacity_loss(
            capacity_loss,
            repair_s=self.repair_s(),
            detection_s=self.detection_s,
            seed=self.seed + 1,
        )
        requests = self._requests()
        shed_retry, shed_admission = self._shed_policies()
        shed_report = ServingSimulator(
            self.fleet(),
            self.batcher,
            faults=injector,
            retry=shed_retry,
            admission=shed_admission,
        ).run(requests)
        queue_retry, queue_admission = self._queue_policies()
        queue_report = ServingSimulator(
            self.fleet(),
            self.batcher,
            faults=injector,
            retry=queue_retry,
            admission=queue_admission,
        ).run(requests)
        return FaultSweepRow(
            capacity_loss=capacity_loss,
            mtbf_s=injector.mtbf_s,
            shed_report=shed_report,
            queue_report=queue_report,
        )

    def sweep_rows(
        self, losses: tuple[float, ...] = (0.05, 0.10, 0.20)
    ) -> list[FaultSweepRow]:
        """The graceful-degradation curve over rising capacity loss."""
        return [self.row_for(loss) for loss in losses]

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def format_table(self, losses: tuple[float, ...] = (0.05, 0.10, 0.20)) -> str:
        """Printable degradation curve: shed vs unprotected queue."""
        baseline = self.baseline()
        lines = [
            f"offered load            : {self.offered_rate_rps():.0f} req/s "
            f"({self.load_factor:.2f} of amortised batch-"
            f"{self.batcher.max_batch_size} capacity "
            f"{self.amortised_capacity_rps():.0f} req/s)",
            f"repair cost per failure : {self.repair_s() * 1e3:.3f} ms tile-bank "
            f"reprogram + {self.detection_s * 1e3:.0f} ms detection/drain = "
            f"{self.downtime_s() * 1e3:.1f} ms",
            f"baseline (no faults)    : goodput {baseline.goodput_rps:.1f} req/s, "
            f"p99 {baseline.p99_latency_s * 1e3:.2f} ms, "
            f"queue peak {baseline.queue_peak}",
            "",
            f"{'loss':>5} {'mtbf(s)':>8} | {'shed goodput':>12} {'vs base':>8} "
            f"{'p99(ms)':>8} {'shed':>5} {'aband':>6} {'avail':>6} | "
            f"{'queue goodput':>13} {'p99(ms)':>8} {'qpeak':>6}",
        ]
        for row in self.sweep_rows(losses):
            shed, queue = row.shed_report, row.queue_report
            lines.append(
                f"{row.capacity_loss:>5.2f} {row.mtbf_s:>8.3f} | "
                f"{shed.goodput_rps:>12.1f} "
                f"{shed.goodput_rps / baseline.goodput_rps * 100:>7.1f}% "
                f"{shed.p99_latency_s * 1e3:>8.2f} {shed.num_shed:>5d} "
                f"{shed.num_abandoned:>6d} "
                f"{shed.fleet_availability * 100:>5.1f}% | "
                f"{queue.goodput_rps:>13.1f} {queue.p99_latency_s * 1e3:>8.2f} "
                f"{queue.queue_peak:>6d}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardScalingRow:
    """One shard count of the scale-out measurement."""

    num_shards: int
    wall_s: float
    baseline_wall_s: float
    report: ServingReport

    @property
    def simulated_rps(self) -> float:
        """Completed requests per wall-clock second of simulation."""
        return self.report.num_requests / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def speedup(self) -> float:
        """Wall-clock speedup over the one-shard run of the same workload."""
        return self.baseline_wall_s / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def efficiency(self) -> float:
        """Speedup per shard (1.0 = perfect linear scaling)."""
        return self.speedup / self.num_shards


class ShardedScalingAnalyzer:
    """Wall-clock scaling of the sharded simulator over shard counts.

    Holds the *per-chip* load fixed while growing the fleet with the shard
    count (``chips_per_shard`` chips and ``rate_per_chip`` offered load
    per shard), so every shard simulates the same amount of work and the
    measurement isolates parallel overhead.  Results are wall-clock and
    machine-dependent — this analyzer backs the README scaling table and
    the demo, not a golden report.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        chips_per_shard: int = 1,
        load_factor: float = 0.7,
        num_requests: int = 100_000,
        seq_len: int = 128,
        seed: int = 0,
    ) -> None:
        require_positive(chips_per_shard, "chips_per_shard")
        require_positive(load_factor, "load_factor")
        require_positive(num_requests, "num_requests")
        self.service_model = service_model or FixedServiceModel(1e-3, request_energy_j=1e-4)
        self.chips_per_shard = chips_per_shard
        self.load_factor = load_factor
        self.num_requests = num_requests
        self.seq_len = seq_len
        self.seed = seed

    def _arrivals(self, num_shards: int) -> PoissonArrivals:
        per_chip = self.load_factor / self.service_model.batch_latency_s(1, self.seq_len)
        rate = per_chip * self.chips_per_shard * num_shards
        return PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)

    def row_for(
        self, num_shards: int, baseline_wall_s: float | None = None
    ) -> ShardScalingRow:
        """Measure one shard count (``baseline_wall_s`` from the 1-shard row)."""
        require_positive(num_shards, "num_shards")
        fleet = ChipFleet(self.service_model, num_chips=num_shards * self.chips_per_shard)
        simulator = ShardedServingSimulator(
            fleet, num_shards=num_shards, parallel=num_shards > 1
        )
        start = time.perf_counter()
        report = simulator.run_poisson(self._arrivals(num_shards), self.num_requests)
        wall = time.perf_counter() - start
        return ShardScalingRow(
            num_shards=num_shards,
            wall_s=wall,
            baseline_wall_s=wall if baseline_wall_s is None else baseline_wall_s,
            report=report,
        )

    def sweep_rows(
        self, shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    ) -> list[ShardScalingRow]:
        """The scaling curve, anchored at the first (baseline) count."""
        rows: list[ShardScalingRow] = []
        for count in shard_counts:
            baseline = rows[0].wall_s if rows else None
            rows.append(self.row_for(count, baseline_wall_s=baseline))
        return rows

    def format_table(self, shard_counts: tuple[int, ...] = (1, 2, 4, 8)) -> str:
        """Printable scaling table (wall-clock; machine-dependent)."""
        lines = [
            f"machine: {os.cpu_count()} CPU(s); "
            f"{self.num_requests} requests per point, "
            f"{self.chips_per_shard} chip(s)/shard at load {self.load_factor:.2f}",
            f"{'shards':>7} {'wall (s)':>9} {'sim req/s':>10} {'speedup':>8} "
            f"{'efficiency':>11} {'p50 (ms)':>9} {'p99 (ms)':>9}",
        ]
        for row in self.sweep_rows(shard_counts):
            lines.append(
                f"{row.num_shards:>7d} {row.wall_s:>9.2f} {row.simulated_rps:>10.0f} "
                f"{row.speedup:>8.2f} {row.efficiency:>11.2f} "
                f"{row.report.p50_latency_s * 1e3:>9.3f} "
                f"{row.report.p99_latency_s * 1e3:>9.3f}"
            )
        return "\n".join(lines)


def sleep_capable_star_model(seq_len: int = 128) -> StarServiceModel:
    """A stock STAR service model whose chip has a deep-sleep power state.

    The default :class:`~repro.core.accelerator.ChipResources` carries no
    :class:`~repro.core.accelerator.PowerState`, so parking a chip saves
    nothing beyond idle.  Autoscaling experiments want the non-volatile
    story: retention-level sleep power, a drain latency into sleep and a
    supply-ramp wake priced at the re-bias energy.  Timing is untouched —
    the model prices batches identically to ``StarServiceModel()``.
    """
    from repro.core.accelerator import ChipResources, PowerState, STARAccelerator
    from repro.core.batch_cost import BatchCostModel

    resources = ChipResources(power_state=PowerState())
    accelerator = STARAccelerator(
        resources=resources, batch_cost=BatchCostModel.streamed()
    )
    return StarServiceModel(accelerator=accelerator, seq_len=seq_len)


@dataclass(frozen=True)
class SLOSweepRow:
    """One offered-load point of the EDF-vs-FIFO skew sweep.

    Both reports serve the *same* tagged bursty request stream; only the
    batcher's drain order differs, so any attainment gap is pure
    scheduling.
    """

    load_factor: float
    offered_rate_rps: float
    fifo_report: ServingReport
    edf_report: ServingReport

    @property
    def fifo_attainment(self) -> float:
        """Overall deadline attainment of the FIFO arm."""
        return self.fifo_report.deadline_attainment()

    @property
    def edf_attainment(self) -> float:
        """Overall deadline attainment of the EDF arm."""
        return self.edf_report.deadline_attainment()


@dataclass(frozen=True)
class ClosedLoopValidationRow:
    """Closed-loop simulation vs the machine-repair M/M/1//N closed form."""

    num_clients: int
    think_s: float
    service_s: float
    simulated_throughput_rps: float
    simulated_latency_s: float
    theory_throughput_rps: float
    theory_latency_s: float

    @property
    def throughput_deviation(self) -> float:
        """Relative error of the simulated throughput."""
        return relative_error(
            self.simulated_throughput_rps, self.theory_throughput_rps
        )

    @property
    def latency_deviation(self) -> float:
        """Relative error of the simulated mean response time."""
        return relative_error(self.simulated_latency_s, self.theory_latency_s)


@dataclass(frozen=True)
class AutoscaleComparisonRow:
    """Autoscaled vs always-on fleet on identical diurnal traffic."""

    autoscaled_report: ServingReport
    always_on_report: ServingReport

    @staticmethod
    def _overhead_j(report: ServingReport) -> float:
        """Non-compute energy: idle leakage, sleep retention, wake bursts."""
        return report.idle_energy_j + report.sleep_energy_j + report.wake_energy_j

    @property
    def total_saving(self) -> float:
        """Fractional total-energy saving of autoscaling."""
        base = self.always_on_report.total_energy_j
        return 1.0 - self.autoscaled_report.total_energy_j / base if base > 0 else 0.0

    @property
    def overhead_saving(self) -> float:
        """Fractional saving on the non-compute (idle/sleep/wake) energy.

        Active energy is pinned by the traffic, so this is the share the
        controller can actually influence.
        """
        base = self._overhead_j(self.always_on_report)
        return 1.0 - self._overhead_j(self.autoscaled_report) / base if base > 0 else 0.0


class SLOServingAnalyzer:
    """The serving control plane end to end (E12).

    Three sections, all on the same sleep-capable STAR fleet:

    * **EDF vs FIFO under bursty skewed traffic** — two SLO classes
      (interactive with a tight deadline, batch with a loose one) tagged
      i.i.d. onto one on/off-MMPP stream, served twice per load point
      with only the batcher's drain order changed.  Bursts pile up a
      backlog; FIFO makes interactive requests queue through it while
      EDF lifts them past the batch class, so attainment separates as
      load grows.
    * **Closed-loop cross-validation** — ``num_clients`` think-time
      clients on one chip with exponential service is exactly the
      machine-repair M/M/1//N queue; the simulated throughput and
      response time answer to the closed form.
    * **Diurnal autoscaling** — a stylized day curve over a fleet sized
      for peak, served with and without the hysteresis autoscaler.  The
      energy ledger splits what parking into non-volatile deep sleep
      saves (idle leakage becomes retention power) from what traffic
      pins (active compute).

    Parameters
    ----------
    service_model:
        Batch pricing; defaults to :func:`sleep_capable_star_model`.
    num_chips:
        Fleet size of the skew sweep (the closed-loop check is always
        single-chip; the autoscale section uses ``autoscale_chips``).
    interactive_deadline_s / batch_deadline_s:
        Relative completion deadlines of the two SLO classes.  The
        interactive deadline must clear the full-batch service time —
        non-preemptive batch-EDF cannot save a request whose own batch
        already overruns it.
    interactive_share:
        Fraction of traffic tagged interactive.
    burst_ratio / base_ratio / burst_s:
        The on/off MMPP: bursts at ``burst_ratio`` times the mean rate
        lasting ``burst_s`` on average, quiet periods at ``base_ratio``
        times the mean, duty cycle solved so the long-run mean is exact.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 2,
        seq_len: int = 128,
        num_requests: int = 3000,
        seed: int = 0,
        max_batch_size: int = 8,
        max_wait_s: float = 2e-3,
        interactive_deadline_s: float = 0.06,
        batch_deadline_s: float = 1.0,
        interactive_share: float = 0.5,
        burst_ratio: float = 1.6,
        base_ratio: float = 0.2,
        burst_s: float = 0.2,
    ) -> None:
        require_positive(num_chips, "num_chips")
        require_positive(num_requests, "num_requests")
        require_positive(interactive_deadline_s, "interactive_deadline_s")
        require_positive(batch_deadline_s, "batch_deadline_s")
        if not 0.0 < interactive_share < 1.0:
            raise ValueError(
                f"interactive_share must lie strictly in (0, 1), got "
                f"{interactive_share}"
            )
        if not base_ratio < 1.0 < burst_ratio:
            raise ValueError(
                f"need base_ratio < 1 < burst_ratio for an on/off burst "
                f"process, got ({base_ratio}, {burst_ratio})"
            )
        require_positive(burst_s, "burst_s")
        self.service_model = service_model or sleep_capable_star_model(seq_len)
        self.num_chips = num_chips
        self.seq_len = seq_len
        self.num_requests = num_requests
        self.seed = seed
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.interactive_deadline_s = interactive_deadline_s
        self.batch_deadline_s = batch_deadline_s
        self.interactive_share = interactive_share
        self.burst_ratio = burst_ratio
        self.base_ratio = base_ratio
        self.burst_s = burst_s

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def policy(self) -> SLOPolicy:
        """The two-class SLO policy: interactive (tight), batch (loose)."""
        return SLOPolicy(
            (
                SLOClass("interactive", deadline_s=self.interactive_deadline_s),
                SLOClass("batch", deadline_s=self.batch_deadline_s),
            )
        )

    def amortised_capacity_rps(self) -> float:
        """Fleet completion-rate bound at the batcher's full batch size."""
        cap = self.max_batch_size
        return self.num_chips * cap / self.service_model.batch_latency_s(
            cap, self.seq_len
        )

    def _arrivals(self, mean_rate_rps: float) -> MMPPArrivals:
        """The on/off burst process with an exact long-run mean rate."""
        burst = self.burst_ratio * mean_rate_rps
        base = self.base_ratio * mean_rate_rps
        duty = (mean_rate_rps - base) / (burst - base)
        return MMPPArrivals.on_off(
            burst_rate_rps=burst,
            base_rate_rps=base,
            burst_s=self.burst_s,
            duty=duty,
            seq_len=self.seq_len,
            seed=self.seed,
        )

    def _tagged_requests(self, mean_rate_rps: float):
        requests = self._arrivals(mean_rate_rps).generate(self.num_requests)
        return self.policy().tag_random(
            requests,
            weights=(self.interactive_share, 1.0 - self.interactive_share),
            seed=self.seed + 1,
        )

    # ------------------------------------------------------------------ #
    # EDF vs FIFO skew sweep
    # ------------------------------------------------------------------ #
    def row_for(self, load_factor: float) -> SLOSweepRow:
        """Both drain orders at one offered load on identical traffic."""
        require_positive(load_factor, "load_factor")
        rate = load_factor * self.amortised_capacity_rps()
        requests = self._tagged_requests(rate)
        fifo = DynamicBatcher(
            max_batch_size=self.max_batch_size, max_wait_s=self.max_wait_s
        )
        edf = DynamicBatcher.edf(
            max_batch_size=self.max_batch_size, max_wait_s=self.max_wait_s
        )
        fifo_report = ServingSimulator(
            ChipFleet(self.service_model, num_chips=self.num_chips), fifo
        ).run(requests)
        edf_report = ServingSimulator(
            ChipFleet(self.service_model, num_chips=self.num_chips), edf
        ).run(requests)
        return SLOSweepRow(
            load_factor=load_factor,
            offered_rate_rps=rate,
            fifo_report=fifo_report,
            edf_report=edf_report,
        )

    def sweep_rows(
        self, load_factors: tuple[float, ...] = (0.6, 0.8, 0.9)
    ) -> list[SLOSweepRow]:
        """The skew sweep over rising offered load."""
        return [self.row_for(factor) for factor in load_factors]

    # ------------------------------------------------------------------ #
    # closed-loop cross-validation
    # ------------------------------------------------------------------ #
    def closed_loop_validation(
        self,
        num_clients: int = 8,
        think_s: float = 0.010,
        service_s: float = 0.001,
        num_requests: int = 15000,
    ) -> ClosedLoopValidationRow:
        """Single-chip closed loop vs the machine-repair M/M/1//N form."""
        clients = ClosedLoopClients(
            num_clients=num_clients,
            think_s=think_s,
            seq_len=self.seq_len,
            seed=self.seed + 2,
        )
        model = ExponentialServiceModel(
            mean_s=service_s, request_energy_j=1e-4, seed=self.seed + 3
        )
        report = ServingSimulator(
            ChipFleet(model, num_chips=1), NO_BATCHING
        ).run_closed_loop(clients, num_requests)
        theory = MachineRepairQueue(
            num_clients=num_clients, think_s=think_s, service_s=service_s
        )
        return ClosedLoopValidationRow(
            num_clients=num_clients,
            think_s=think_s,
            service_s=service_s,
            simulated_throughput_rps=report.throughput_rps,
            simulated_latency_s=report.mean_latency_s,
            theory_throughput_rps=theory.throughput_rps,
            theory_latency_s=theory.mean_latency_s,
        )

    # ------------------------------------------------------------------ #
    # diurnal autoscaling
    # ------------------------------------------------------------------ #
    def autoscaler(self) -> Autoscaler:
        """The hysteresis controller of the diurnal comparison."""
        return Autoscaler(
            interval_s=0.05,
            scale_up_above=0.85,
            scale_down_below=0.55,
            scale_up_queue_depth=64,
            min_chips=1,
        )

    def autoscale_comparison(
        self,
        mean_rate_rps: float = 500.0,
        period_s: float = 12.0,
        num_chips: int = 4,
        num_requests: int = 6000,
    ) -> AutoscaleComparisonRow:
        """One compressed day with and without the autoscaler.

        ``period_s`` compresses the 24-hour curve so a few thousand
        requests span whole day-night swings; the fleet is sized for the
        peak, so the trough leaves most of it idle — the autoscaler's
        whole opportunity.
        """
        arrivals = DayCurveArrivals(
            mean_rate_rps=mean_rate_rps,
            period_s=period_s,
            seq_len=self.seq_len,
            seed=self.seed + 4,
        )
        requests = arrivals.generate(num_requests)
        batcher = DynamicBatcher(
            max_batch_size=self.max_batch_size, max_wait_s=self.max_wait_s
        )
        autoscaled = ServingSimulator(
            ChipFleet(self.service_model, num_chips=num_chips),
            batcher,
            autoscaler=self.autoscaler(),
        ).run(requests)
        always_on = ServingSimulator(
            ChipFleet(self.service_model, num_chips=num_chips), batcher
        ).run(requests)
        return AutoscaleComparisonRow(
            autoscaled_report=autoscaled, always_on_report=always_on
        )

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def format_table(
        self, load_factors: tuple[float, ...] = (0.6, 0.8, 0.9)
    ) -> str:
        """Printable control-plane report: sweep, crossval, autoscale."""
        policy = self.policy()
        lines = [
            f"traffic : on/off MMPP bursts at {self.burst_ratio:.1f}x mean "
            f"(~{self.burst_s * 1e3:.0f} ms), "
            f"{self.interactive_share * 100:.0f}% interactive, "
            f"{self.num_chips} chip(s), batch cap {self.max_batch_size}",
            f"classes : interactive {policy.deadline_of(0) * 1e3:.0f} ms, "
            f"batch {policy.deadline_of(1) * 1e3:.0f} ms "
            f"(amortised capacity {self.amortised_capacity_rps():.0f} req/s)",
            "",
            f"{'load':>5} {'rate (r/s)':>11} | {'fifo att':>9} {'inter':>6} "
            f"{'batch':>6} {'p99(ms)':>8} | {'edf att':>8} {'inter':>6} "
            f"{'batch':>6} {'p99(ms)':>8}",
        ]
        for row in self.sweep_rows(load_factors):
            fifo, edf = row.fifo_report, row.edf_report
            lines.append(
                f"{row.load_factor:>5.2f} {row.offered_rate_rps:>11.1f} | "
                f"{row.fifo_attainment:>9.3f} {fifo.deadline_attainment(0):>6.3f} "
                f"{fifo.deadline_attainment(1):>6.3f} "
                f"{fifo.p99_latency_s * 1e3:>8.2f} | "
                f"{row.edf_attainment:>8.3f} {edf.deadline_attainment(0):>6.3f} "
                f"{edf.deadline_attainment(1):>6.3f} "
                f"{edf.p99_latency_s * 1e3:>8.2f}"
            )
        check = self.closed_loop_validation()
        lines.append(
            f"closed-loop check ({check.num_clients} clients, "
            f"Z={check.think_s * 1e3:.0f} ms, s={check.service_s * 1e3:.0f} ms): "
            f"X {check.simulated_throughput_rps:.1f} vs M/M/1//N "
            f"{check.theory_throughput_rps:.1f} req/s "
            f"({check.throughput_deviation * 100:.2f}% off), "
            f"R {check.simulated_latency_s * 1e3:.3f} vs "
            f"{check.theory_latency_s * 1e3:.3f} ms "
            f"({check.latency_deviation * 100:.2f}% off)"
        )
        autoscale = self.autoscale_comparison()
        auto, base = autoscale.autoscaled_report, autoscale.always_on_report
        lines.append(
            f"diurnal autoscale ({base.num_chips} chips): "
            f"mean awake {auto.mean_awake_chips:.2f}, "
            f"{auto.num_scale_events} transitions, "
            f"energy {auto.total_energy_j:.1f} vs {base.total_energy_j:.1f} J "
            f"always-on ({autoscale.total_saving * 100:.1f}% total, "
            f"{autoscale.overhead_saving * 100:.1f}% of idle+sleep+wake), "
            f"p99 {auto.p99_latency_s * 1e3:.2f} vs "
            f"{base.p99_latency_s * 1e3:.2f} ms"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class TieredFidelityRow:
    """One sampling fraction on identical arrivals and base pricing."""

    sample_fraction: float
    report: ServingReport

    @property
    def executed_fraction(self) -> float:
        """Realized fraction of batches priced on the executed tier."""
        return self.report.executed_batch_fraction


class TieredServingAnalyzer:
    """Fidelity tiering on one fleet and one request stream (E13).

    Serves the *same* Poisson stream once per sampling fraction: the
    analytic-only baseline (``sample_fraction = 0``, bit-identical to a
    plain :class:`~repro.serving.fleet.StarServiceModel` fleet), then
    growing Bernoulli fractions of dispatches priced on cached
    executed-schedule templates (:mod:`repro.core.schedule_cache`) with
    per-layer lognormal jitter.  Because the executed tier's draws are
    bounded below by the jitter-free critical path while the analytic tier
    never moves, the sampled runs' p50/p99 rise with the fraction — the
    pipeline-level tail variation the analytic model cannot see
    propagating into request-level percentiles.

    Deterministic by construction (seeded arrivals, seeded sampling
    streams, no wall-clock content), so its table is golden-pinned as e13.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 2,
        seq_len: int = 256,
        num_requests: int = 2000,
        seed: int = 0,
        load_factor: float = 0.5,
        max_batch_size: int = 8,
        max_wait_s: float = 2e-3,
        jitter_sigma: float = 0.3,
    ) -> None:
        require_positive(num_chips, "num_chips")
        require_positive(num_requests, "num_requests")
        require_positive(load_factor, "load_factor")
        require_positive(jitter_sigma, "jitter_sigma")
        self.service_model = service_model or StarServiceModel(seq_len=seq_len)
        self.num_chips = num_chips
        self.seq_len = seq_len
        self.num_requests = num_requests
        self.seed = seed
        self.load_factor = load_factor
        self.batcher = DynamicBatcher(
            max_batch_size=max_batch_size, max_wait_s=max_wait_s
        )
        self.jitter_sigma = jitter_sigma

    def _requests(self):
        capacity = (
            self.num_chips
            * self.batcher.max_batch_size
            / self.service_model.batch_latency_s(
                self.batcher.max_batch_size, self.seq_len
            )
        )
        arrivals = PoissonArrivals(
            self.load_factor * capacity, seq_len=self.seq_len, seed=self.seed
        )
        return arrivals.generate(self.num_requests)

    def row_for(self, sample_fraction: float) -> TieredFidelityRow:
        """Serve the stream with ``sample_fraction`` of dispatches executed."""
        from repro.serving.fleet import TieredServiceModel

        if sample_fraction > 0.0:
            model: ServiceModel = TieredServiceModel(
                self.service_model,
                sample_fraction=sample_fraction,
                jitter_sigma=self.jitter_sigma,
                seed=self.seed,
            )
        else:
            # the analytic-only arm is the *unwrapped* base model — the
            # wrapped fraction-0 form is pinned bit-identical elsewhere
            model = self.service_model
        fleet = ChipFleet(model, num_chips=self.num_chips)
        report = ServingSimulator(fleet, self.batcher).run(self._requests())
        return TieredFidelityRow(sample_fraction=sample_fraction, report=report)

    def sweep_rows(
        self, fractions: tuple[float, ...] = (0.0, 0.05, 0.25, 1.0)
    ) -> list[TieredFidelityRow]:
        """The fidelity sweep over growing sampled fractions."""
        return [self.row_for(fraction) for fraction in fractions]

    def format_table(
        self, fractions: tuple[float, ...] = (0.0, 0.05, 0.25, 1.0)
    ) -> str:
        """Printable fidelity sweep: tail metrics per sampled fraction.

        ``x base`` is each run's p99 over the first (analytic-only) row's
        p99 — the tail-propagation headline.  ``exec p99`` is the p99 of
        the executed-tier requests alone (small-sample noisy at low
        fractions; ``-`` when the tier is empty).
        """
        rows = self.sweep_rows(fractions)
        baseline_p99 = rows[0].report.p99_latency_s
        lines = [
            f"{'sampled':>8} {'executed':>9} {'p50 (ms)':>9} {'p95 (ms)':>9} "
            f"{'p99 (ms)':>9} {'exec p99':>9} {'x base':>7}"
        ]
        for row in rows:
            report = row.report
            executed_p99 = report.tier_latency_percentile_s(1, 99.0)
            executed_ms = (
                f"{executed_p99 * 1e3:>9.2f}"
                if executed_p99 == executed_p99
                else f"{'-':>9}"
            )
            lines.append(
                f"{row.sample_fraction:>8.2f} {row.executed_fraction:>9.3f} "
                f"{report.p50_latency_s * 1e3:>9.2f} "
                f"{report.p95_latency_s * 1e3:>9.2f} "
                f"{report.p99_latency_s * 1e3:>9.2f} {executed_ms} "
                f"{report.p99_latency_s / baseline_p99:>7.3f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class RoutingPolicyRow:
    """One routing arm on identical arrivals and an identical mixed fleet."""

    label: str
    report: ServingReport

    @property
    def goodput_rps(self) -> float:
        """Deadline-meeting completions per second of makespan."""
        report = self.report
        span = report.makespan_s
        if span <= 0:
            return 0.0
        return (report.num_requests - report.num_deadline_misses()) / span

    @property
    def stolen_batches(self) -> int:
        return self.report.routing.stolen_batches if self.report.routing else 0


class RoutingServingAnalyzer:
    """Topology-aware routing on a mixed-tile fleet (E14).

    The fleet is one big-tile chip plus several small-tile chips serving a
    skewed trace — mostly short interactive sequences with a heavy
    minority of long ones, tagged with a tight/loose SLO split by length.
    Each arm serves the *same* tagged Poisson stream:

    * ``global fifo`` — the fleet-wide queue (the pre-routing simulator):
      any idle chip takes the head batch, so long sequences routinely land
      on small-tile chips and mixed batches pad to 512;
    * per-chip queues under ``round_robin`` / ``join_shortest_queue`` /
      ``shortest_expected_delay`` routing, the latter with and without
      work stealing, all behind the same front-end→chip network stage.

    The offered load is chosen beyond the length-blind policies' capacity
    but within the cost-oracle router's: SED keeps long sequences on the
    big-tile chip (where their amortized batch cost is a fraction of a
    small chip's), so it sustains goodput and tail latency where the
    global FIFO collapses — the headline gap the golden pins.

    Deterministic by construction (seeded arrivals, analytic pricing, no
    wall-clock content), so its table is golden-pinned as e14.
    """

    def __init__(
        self,
        num_small_chips: int = 3,
        big_tiles: int = 96,
        small_tiles: int = 16,
        short_len: int = 64,
        long_len: int = 512,
        long_weight: int = 3,
        short_weight: int = 17,
        rate_rps: float = 1000.0,
        num_requests: int = 4000,
        seed: int = 11,
        max_batch_size: int = 8,
        max_wait_s: float = 2e-3,
        short_deadline_s: float = 20e-3,
        long_deadline_s: float = 200e-3,
        link_latency_s: float = 20e-6,
        steal_latency_s: float = 10e-6,
    ) -> None:
        require_positive(num_small_chips, "num_small_chips")
        require_positive(rate_rps, "rate_rps")
        require_positive(num_requests, "num_requests")
        self.num_small_chips = num_small_chips
        self.big_tiles = big_tiles
        self.small_tiles = small_tiles
        self.short_len = short_len
        self.long_len = long_len
        self.seq_lens = (short_len,) * short_weight + (long_len,) * long_weight
        self.rate_rps = rate_rps
        self.num_requests = num_requests
        self.seed = seed
        self.batcher = DynamicBatcher(
            max_batch_size=max_batch_size, max_wait_s=max_wait_s
        )
        self.slo = SLOPolicy(
            (
                SLOClass("interactive", short_deadline_s),
                SLOClass("batch", long_deadline_s),
            )
        )
        self.network = NetworkModel(
            link_latency_s=link_latency_s, steal_latency_s=steal_latency_s
        )
        # one cache for every arm: each (tiles, batch, seq_len) shape is
        # priced exactly once across the whole experiment
        self._cache = PricingCache()

    def _star_model(self, num_tiles: int) -> StarServiceModel:
        from repro.core.accelerator import STARAccelerator
        from repro.core.batch_cost import BatchCostModel
        from repro.core.config import MatMulEngineConfig, STARConfig
        from repro.nn.bert import BertConfig

        accelerator = STARAccelerator(
            STARConfig(matmul=MatMulEngineConfig(num_tiles=num_tiles)),
            batch_cost=BatchCostModel.streamed(),
        )
        return StarServiceModel(
            accelerator=accelerator,
            bert_config=BertConfig(num_layers=2),
            cache=self._cache,
        )

    def _fleet(self) -> ChipFleet:
        """A fresh mixed fleet: chip 0 big-tile, the rest small-tile."""
        models = [self._star_model(self.big_tiles)]
        models.extend(
            self._star_model(self.small_tiles) for _ in range(self.num_small_chips)
        )
        return ChipFleet(service_models=models)

    def _requests(self):
        arrivals = PoissonArrivals(
            self.rate_rps, seq_len=self.seq_lens, seed=self.seed
        )
        return self.slo.tag_by_length(
            arrivals.generate(self.num_requests),
            boundaries=(self.short_len,),
        )

    def arms(self) -> tuple[tuple[str, Router | None], ...]:
        """The compared (label, router) arms, baseline first."""
        return (
            ("global fifo", None),
            ("round robin", Router(policy="round_robin", network=self.network)),
            (
                "join shortest queue",
                Router(policy="join_shortest_queue", network=self.network),
            ),
            (
                "sed, no stealing",
                Router(
                    policy="shortest_expected_delay",
                    network=self.network,
                    stealing=False,
                ),
            ),
            (
                "sed + stealing",
                Router(policy="shortest_expected_delay", network=self.network),
            ),
        )

    def row_for(self, label: str, router: Router | None) -> RoutingPolicyRow:
        """Serve the trace through one routing arm on a fresh fleet."""
        requests = self._requests()
        simulator = ServingSimulator(self._fleet(), self.batcher, router=router)
        return RoutingPolicyRow(label=label, report=simulator.run(requests))

    def sweep_rows(self) -> list[RoutingPolicyRow]:
        """All arms over the identical tagged trace."""
        return [self.row_for(label, router) for label, router in self.arms()]

    def format_table(self) -> str:
        """Printable arm comparison: goodput/tails per routing policy.

        ``x good`` is each arm's goodput over the global-FIFO baseline's —
        the headline multiple; ``p99 (ms)`` falls with it as the router
        stops padding mixed batches and parking long sequences on
        small-tile chips.
        """
        rows = self.sweep_rows()
        baseline = rows[0]
        lines = [
            f"{'policy':<22} {'goodput':>8} {'x good':>7} {'attain':>7} "
            f"{'p50 (ms)':>9} {'p99 (ms)':>9} {'stolen':>7} {'peak q':>7}"
        ]
        for row in rows:
            report = row.report
            multiple = (
                row.goodput_rps / baseline.goodput_rps
                if baseline.goodput_rps > 0
                else float("inf")
            )
            peak = (
                report.routing.peak_queue_depth
                if report.routing
                else report.queue_peak
            )
            lines.append(
                f"{row.label:<22} {row.goodput_rps:>8.1f} {multiple:>7.2f} "
                f"{report.deadline_attainment():>7.3f} "
                f"{report.p50_latency_s * 1e3:>9.2f} "
                f"{report.p99_latency_s * 1e3:>9.2f} "
                f"{row.stolen_batches:>7} {peak:>7}"
            )
        return "\n".join(lines)
