"""Physical-unit helpers and constants.

All internal cost models store values in SI base units (seconds, watts,
joules, square metres expressed as mm^2 for convenience).  These helpers make
the conversions explicit at the boundaries of the package, where the
literature typically quotes ns / pJ / mW / um^2.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "PJ",
    "NJ",
    "UJ",
    "MW",
    "UW",
    "UM2_TO_MM2",
    "GIGA",
    "MEGA",
    "KILO",
    "to_giga_ops_per_watt",
    "format_si",
]

# time
NS = 1e-9
US = 1e-6
MS = 1e-3

# energy
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6

# power
MW = 1e-3
UW = 1e-6

# area
UM2_TO_MM2 = 1e-6

# magnitudes
GIGA = 1e9
MEGA = 1e6
KILO = 1e3


def to_giga_ops_per_watt(operations: float, latency_s: float, power_w: float) -> float:
    """Computing efficiency in GOPs/s/W as defined by the STAR paper.

    "Computing efficiency here measures the number of operations that can be
    performed by a computing unit every unit time and every watt of power
    consumed."  (Section III.)
    """
    if latency_s <= 0:
        raise ValueError(f"latency must be positive, got {latency_s}")
    if power_w <= 0:
        raise ValueError(f"power must be positive, got {power_w}")
    return operations / latency_s / power_w / GIGA


_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Render ``value`` with an SI prefix, e.g. ``format_si(2.5e-9, 's') == '2.5 ns'``."""
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}"
