"""Sharded serving: scale the fleet simulation across worker processes.

Run with:  python examples/sharded_serving.py

One Python event loop tops out around a hundred thousand events per
second, three orders of magnitude short of simulating a day of
planet-scale traffic in minutes.  This script shows the way out: Poisson
splitting makes a serving fleet embarrassingly parallel, so the
:class:`ShardedServingSimulator` partitions chips and traffic across
worker-process shards (each an independent, exactly-seeded Poisson
stream), runs a full simulator per shard, and merges the per-shard
reports exactly — pooled latency samples, summed ledgers, offset chip
ids.  The same seed and shard count reproduce the same merged report on
any machine and worker count; a shard of the fleet is still an exact
M/D/1 queue, so the merged run stays pinned to Pollaczek–Khinchine.
"""

from __future__ import annotations

from repro.analysis.serving import ShardedScalingAnalyzer
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    MD1Queue,
    PoissonArrivals,
    ShardedServingSimulator,
    StarServiceModel,
)


def main() -> None:
    # 1. a quarter-million requests over 8 shards, cross-checked on theory
    service = 1e-3
    rate = 0.7 / service  # rho = 0.7 per single-chip shard
    num_shards = 8
    fleet = ChipFleet(FixedServiceModel(service), num_chips=num_shards)
    simulator = ShardedServingSimulator(fleet, num_shards=num_shards)
    report = simulator.run_poisson(
        PoissonArrivals(rate * num_shards, seq_len=128, seed=0), 250_000
    )
    theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
    print(f"merged report: {report.num_requests} requests over "
          f"{report.num_shards} shards / {report.num_chips} chips")
    print(report.format_table())
    deviation = abs(report.mean_wait_s - theory.mean_wait_s) / theory.mean_wait_s
    print(f"per-shard M/D/1 check: merged wait {report.mean_wait_s * 1e3:.3f} ms "
          f"vs P-K {theory.mean_wait_s * 1e3:.3f} ms ({deviation * 100:.2f}% off)\n")

    # 2. determinism: the same seed and shard count reproduce the report
    #    whether shards run serially in-process or across worker processes
    serial = ShardedServingSimulator(fleet, num_shards=num_shards, parallel=False)
    again = serial.run_poisson(
        PoissonArrivals(rate * num_shards, seq_len=128, seed=0), 250_000
    )
    print("serial in-process re-run is bit-identical:",
          again.requests == report.requests and again.batches == report.batches, "\n")

    # 3. a batched STAR fleet: pre-warm pricing once, ship tables to workers
    star = StarServiceModel()
    star_fleet = ChipFleet(star, num_chips=4)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    capacity = 4 * 8 / star.batch_latency_s(8, 128)
    sharded_star = ShardedServingSimulator(
        star_fleet, batcher, num_shards=4
    ).prewarm(batch_sizes=range(1, 9), seq_lens=[128])
    star_report = sharded_star.run_poisson(
        PoissonArrivals(0.8 * capacity, seq_len=128, seed=1), 40_000
    )
    print("STAR fleet, batch-aware pricing tabulated once in the parent:")
    print(star_report.format_table(), "\n")

    # 4. the scaling table (wall-clock, so machine-dependent)
    print("scaling sweep (per-shard work held constant):")
    print(ShardedScalingAnalyzer(num_requests=100_000).format_table((1, 2, 4, 8)))


if __name__ == "__main__":
    main()
