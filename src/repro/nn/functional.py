"""Reference NumPy implementations of the neural-network primitives.

These are the "golden" floating-point functions the hardware models are
checked against.  Everything operates on plain ``numpy.ndarray`` values and
follows the shapes used by BERT-style encoders: activations are
``(..., seq_len, hidden)`` and attention scores are
``(..., num_heads, seq_len, seq_len)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "gelu", "relu", "layer_norm", "scaled_dot_product_attention"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Subtracts the per-slice maximum before exponentiation — precisely the
    ``x_i - x_max`` step that STAR maps onto its CAM/SUB crossbar.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation used by BERT)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Layer normalisation over the last dimension (BERT convention)."""
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + epsilon)
    if gamma is not None:
        normalized = normalized * np.asarray(gamma, dtype=np.float64)
    if beta is not None:
        normalized = normalized + np.asarray(beta, dtype=np.float64)
    return normalized


def scaled_dot_product_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    mask: np.ndarray | None = None,
    softmax_fn=softmax,
) -> tuple[np.ndarray, np.ndarray]:
    """Attention(Q, K, V) with a pluggable softmax implementation.

    Parameters
    ----------
    query, key, value:
        Arrays of shape ``(..., seq_len, head_dim)``.
    mask:
        Optional additive mask broadcastable to the score shape
        ``(..., seq_len, seq_len)``; masked positions should carry large
        negative values.
    softmax_fn:
        Callable applied to the scaled scores along the last axis.  Passing
        a hardware softmax model here is how the accuracy experiments swap
        the exact softmax for STAR's fixed-point engine.

    Returns
    -------
    (output, attention_weights)
    """
    query = np.asarray(query, dtype=np.float64)
    key = np.asarray(key, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    head_dim = query.shape[-1]
    if key.shape[-1] != head_dim:
        raise ValueError(
            f"query head_dim {head_dim} does not match key head_dim {key.shape[-1]}"
        )
    scores = query @ np.swapaxes(key, -1, -2) / np.sqrt(head_dim)
    if mask is not None:
        scores = scores + np.asarray(mask, dtype=np.float64)
    weights = softmax_fn(scores)
    return weights @ value, weights
