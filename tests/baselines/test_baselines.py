"""Tests for the comparison designs: CMOS softmax, Softermax, GPU, PipeLayer, ReTransformer."""

from __future__ import annotations

import pytest

from repro.baselines.cmos_softmax import CMOSSoftmaxConfig, CMOSSoftmaxUnit
from repro.baselines.gpu import GPUConfig, GPUModel, TITAN_RTX
from repro.baselines.pipelayer import PipeLayerConfig, PipeLayerModel
from repro.baselines.retransformer import ReTransformerConfig, ReTransformerModel
from repro.baselines.softermax import SoftermaxConfig, SoftermaxUnit
from repro.core.accelerator import STARAccelerator
from repro.core.config import SoftmaxEngineConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.bert import BertWorkload
from repro.utils.fixed_point import CNEWS_FORMAT


class TestCMOSSoftmax:
    def test_area_and_power_positive(self):
        unit = CMOSSoftmaxUnit()
        assert unit.area_um2 > 0
        assert unit.power_w > 0
        assert unit.area_mm2 == pytest.approx(unit.area_um2 * 1e-6)

    def test_row_latency_scales_with_passes(self):
        wide = CMOSSoftmaxUnit(CMOSSoftmaxConfig(parallel_lanes=128))
        narrow = CMOSSoftmaxUnit(CMOSSoftmaxConfig(parallel_lanes=32))
        assert narrow.row_latency_s() > wide.row_latency_s()

    def test_wider_datapath_costs_more(self):
        small = CMOSSoftmaxUnit(CMOSSoftmaxConfig(data_bits=8))
        large = CMOSSoftmaxUnit(CMOSSoftmaxConfig(data_bits=16))
        assert large.area_um2 > small.area_um2
        assert large.power_w > small.power_w

    def test_ledger_total_positive(self):
        ledger = CMOSSoftmaxUnit().row_ledger()
        assert ledger.total_energy_j > 0
        assert "exp units" in {entry.name for entry in ledger}

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CMOSSoftmaxConfig(vector_length=1)
        with pytest.raises(ValueError):
            CMOSSoftmaxConfig(data_bits=2)


class TestSoftermax:
    def test_cheaper_than_cmos_baseline(self):
        baseline = CMOSSoftmaxUnit()
        softermax = SoftermaxUnit()
        assert softermax.area_um2 < baseline.area_um2
        assert softermax.power_w < baseline.power_w

    def test_table1_ordering_softermax_between_baseline_and_star(self):
        """Table I: STAR softmax < Softermax < CMOS baseline in area and power."""
        baseline = CMOSSoftmaxUnit()
        softermax = SoftermaxUnit()
        star = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        assert star.area_um2() < softermax.area_um2 < baseline.area_um2
        assert star.power_w(128) < softermax.power_w < baseline.power_w

    def test_table1_star_ratios_in_paper_regime(self):
        baseline = CMOSSoftmaxUnit()
        star = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        area_ratio = star.area_um2() / baseline.area_um2
        power_ratio = star.power_w(128) / baseline.power_w
        # paper: 0.06x area, 0.05x power; allow a generous modelling band
        assert area_ratio < 0.15
        assert power_ratio < 0.10

    def test_row_energy_positive(self):
        unit = SoftermaxUnit()
        assert unit.row_energy_j() > 0
        assert unit.throughput_rows_per_s() > 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SoftermaxConfig(data_bits=2)
        with pytest.raises(ValueError):
            SoftermaxConfig(parallel_lanes=0)


class TestGPUModel:
    def test_softmax_share_grows_with_sequence_length(self):
        gpu = GPUModel()
        shares = [
            gpu.latency_breakdown(BertWorkload(seq_len=length)).softmax_share
            for length in (64, 128, 256, 512, 1024)
        ]
        assert shares == sorted(shares)

    def test_softmax_exceeds_matmul_at_512_but_not_256(self):
        """The paper's introductory observation."""
        gpu = GPUModel()
        assert gpu.latency_breakdown(BertWorkload(seq_len=512)).softmax_share > 0.5
        assert gpu.latency_breakdown(BertWorkload(seq_len=256)).softmax_share < 0.5

    def test_share_at_512_near_paper_value(self):
        share = GPUModel().latency_breakdown(BertWorkload(seq_len=512)).softmax_share
        assert share == pytest.approx(0.592, abs=0.08)

    def test_latency_increases_with_length(self):
        gpu = GPUModel()
        assert gpu.total_latency_s(BertWorkload(seq_len=512)) > gpu.total_latency_s(
            BertWorkload(seq_len=128)
        )

    def test_cost_report_efficiency_regime(self):
        report = GPUModel().cost_report(BertWorkload(seq_len=128))
        assert 5 < report.computing_efficiency_gops_per_watt < 60
        assert report.power_w == TITAN_RTX.board_power_w

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GPUConfig(tensor_core_tflops=0)
        with pytest.raises(ValueError):
            GPUConfig(matmul_kernels_per_layer=0)


class TestAcceleratorBaselines:
    def test_fig3_ordering(self):
        """Fig. 3: GPU < PipeLayer < ReTransformer < STAR in GOPs/s/W."""
        workload = BertWorkload(seq_len=128)
        gpu = GPUModel().cost_report(workload).computing_efficiency_gops_per_watt
        pipelayer = PipeLayerModel().cost_report(workload).computing_efficiency_gops_per_watt
        retransformer = (
            ReTransformerModel().cost_report(workload).computing_efficiency_gops_per_watt
        )
        star = STARAccelerator().cost_report(workload).computing_efficiency_gops_per_watt
        assert gpu < pipelayer < retransformer < star

    def test_fig3_gain_magnitudes(self):
        workload = BertWorkload(seq_len=128)
        star = STARAccelerator().cost_report(workload).computing_efficiency_gops_per_watt
        gpu = GPUModel().cost_report(workload).computing_efficiency_gops_per_watt
        pipelayer = PipeLayerModel().cost_report(workload).computing_efficiency_gops_per_watt
        retransformer = (
            ReTransformerModel().cost_report(workload).computing_efficiency_gops_per_watt
        )
        assert star / gpu == pytest.approx(30.63, rel=0.35)
        assert star / pipelayer == pytest.approx(4.32, rel=0.35)
        assert star / retransformer == pytest.approx(1.31, rel=0.25)

    def test_pipelayer_pays_operand_write_cost(self):
        workload = BertWorkload(seq_len=128)
        model = PipeLayerModel()
        assert model.operand_write_latency_s(workload) > 0
        assert model.operand_write_energy_j(workload) > 0
        no_rewrite = ReTransformerModel()
        assert model.inference_latency_s(workload) > no_rewrite.inference_latency_s(workload)

    def test_retransformer_slower_than_star(self):
        workload = BertWorkload(seq_len=128)
        assert ReTransformerModel().inference_latency_s(workload) > STARAccelerator().inference_latency_s(
            workload
        )

    def test_power_and_area_positive(self):
        for model in (PipeLayerModel(), ReTransformerModel()):
            assert model.power_w() > 0
            assert model.area_mm2() > 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PipeLayerConfig(write_verify_pulses=0)
        with pytest.raises(ValueError):
            ReTransformerConfig(num_softmax_units=0)
