"""Tests for repro.utils.fixed_point."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.fixed_point import (
    CNEWS_FORMAT,
    COLA_FORMAT,
    MRPC_FORMAT,
    FixedPointFormat,
    dequantize_codes,
    quantization_error,
    quantize,
    sqnr_db,
)


class TestFixedPointFormat:
    def test_paper_formats_match_table(self):
        assert CNEWS_FORMAT.total_bits == 8
        assert CNEWS_FORMAT.integer_bits == 6 and CNEWS_FORMAT.frac_bits == 2
        assert MRPC_FORMAT.total_bits == 9
        assert MRPC_FORMAT.integer_bits == 6 and MRPC_FORMAT.frac_bits == 3
        assert COLA_FORMAT.total_bits == 7
        assert COLA_FORMAT.integer_bits == 5 and COLA_FORMAT.frac_bits == 2

    def test_resolution_is_power_of_two(self):
        fmt = FixedPointFormat(6, 2)
        assert fmt.resolution == 0.25
        assert FixedPointFormat(6, 3).resolution == 0.125

    def test_max_value(self):
        fmt = FixedPointFormat(6, 2)
        assert fmt.max_value == pytest.approx(63.75)
        assert fmt.num_levels == 256

    def test_signed_format_adds_sign_bit(self):
        unsigned = FixedPointFormat(6, 2, signed=False)
        signed = FixedPointFormat(6, 2, signed=True)
        assert signed.total_bits == unsigned.total_bits + 1
        assert signed.min_value == -signed.max_value
        assert unsigned.min_value == 0.0

    def test_invalid_formats_raise(self):
        with pytest.raises(ValueError):
            FixedPointFormat(-1, 2)
        with pytest.raises(ValueError):
            FixedPointFormat(2, -1)
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)

    def test_to_code_round_trip_on_grid(self):
        fmt = FixedPointFormat(4, 2)
        values = fmt.representable_values()
        codes = fmt.to_code(values)
        assert np.array_equal(codes, np.arange(fmt.num_levels))
        np.testing.assert_allclose(fmt.from_code(codes), values)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(3, 1)
        assert fmt.quantize(1000.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-1000.0) == pytest.approx(0.0)
        signed = FixedPointFormat(3, 1, signed=True)
        assert signed.quantize(-1000.0) == pytest.approx(-signed.max_value)

    def test_quantize_rounds_to_nearest(self):
        fmt = FixedPointFormat(4, 2)
        assert fmt.quantize(1.1) == pytest.approx(1.0)
        assert fmt.quantize(1.13) == pytest.approx(1.25)

    def test_representable_values_count_and_spacing(self):
        fmt = FixedPointFormat(3, 2)
        values = fmt.representable_values()
        assert values.shape == (32,)
        np.testing.assert_allclose(np.diff(values), fmt.resolution)

    def test_contains(self):
        fmt = FixedPointFormat(3, 1)
        assert fmt.contains(0.0)
        assert fmt.contains(fmt.max_value)
        assert not fmt.contains(fmt.max_value + 1)
        assert not fmt.contains(-0.5)

    def test_for_range_covers_requested_range(self):
        fmt = FixedPointFormat.for_range(55.0, 0.25)
        assert fmt.max_value >= 55.0
        assert fmt.resolution <= 0.25
        assert fmt.integer_bits == 6
        assert fmt.frac_bits == 2

    def test_for_range_invalid(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(-1.0, 0.25)
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(1.0, 0.0)

    def test_str_representation(self):
        assert "6.2" in str(FixedPointFormat(6, 2))


class TestHelpers:
    def test_quantize_function_matches_method(self, rng):
        fmt = FixedPointFormat(5, 3)
        values = rng.uniform(0, 30, size=100)
        np.testing.assert_allclose(quantize(values, fmt), fmt.quantize(values))

    def test_dequantize_codes(self):
        fmt = FixedPointFormat(4, 2)
        np.testing.assert_allclose(dequantize_codes(np.array([0, 1, 4]), fmt), [0.0, 0.25, 1.0])

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        fmt = FixedPointFormat(6, 2)
        values = rng.uniform(0, fmt.max_value, size=500)
        errors = quantization_error(values, fmt)
        assert np.all(np.abs(errors) <= fmt.resolution / 2 + 1e-12)

    def test_sqnr_increases_with_precision(self, rng):
        values = rng.uniform(0, 30, size=1000)
        low = sqnr_db(values, FixedPointFormat(5, 1).quantize(values))
        high = sqnr_db(values, FixedPointFormat(5, 4).quantize(values))
        assert high > low

    def test_sqnr_exact_is_infinite(self):
        values = np.array([1.0, 2.0, 3.0])
        assert math.isinf(sqnr_db(values, values))

    def test_sqnr_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sqnr_db(np.zeros(3), np.zeros(4))


class TestFixedPointProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=-500, max_value=500, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantize_idempotent(self, integer_bits, frac_bits, value):
        if integer_bits + frac_bits == 0:
            return
        fmt = FixedPointFormat(integer_bits, frac_bits)
        once = fmt.quantize(value)
        twice = fmt.quantize(once)
        assert once == pytest.approx(float(twice))

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0, max_value=200, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantized_value_in_range(self, integer_bits, frac_bits, value):
        fmt = FixedPointFormat(integer_bits, frac_bits)
        q = float(fmt.quantize(value))
        assert fmt.min_value <= q <= fmt.max_value

    @given(st.floats(min_value=0, max_value=60, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_for_in_range_values(self, value):
        fmt = CNEWS_FORMAT
        q = float(fmt.quantize(value))
        assert abs(q - value) <= fmt.resolution / 2 + 1e-12
