"""Tests for the CAM crossbar, LUT crossbar and write-verify programming model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.rram.lut import LUTConfig, LUTCrossbar, exponential_lut_entries
from repro.rram.programming import ProgrammingConfig, WriteVerifyProgrammer


class TestCAM:
    def test_paper_cam_sub_geometry(self):
        # 512 x 18: 9-bit codewords stored on complementary cell pairs
        config = CAMConfig(rows=512, bits=9)
        assert config.physical_cols == 18
        assert config.num_cells == 512 * 18
        assert config.capacity == 512

    def test_search_finds_stored_code(self):
        cam = CAMCrossbar(CAMConfig(rows=16, bits=4))
        cam.program_codes(np.arange(16))
        for query in (0, 7, 15):
            matches = cam.search(query)
            assert matches.sum() == 1
            assert int(np.flatnonzero(matches)[0]) == query

    def test_search_miss_returns_all_zero(self):
        cam = CAMCrossbar(CAMConfig(rows=8, bits=4))
        cam.program_codes(np.arange(8))  # codes 0..7 of a 16-code space
        assert cam.search(12).sum() == 0
        assert cam.match_index(12) == -1

    def test_search_many_matches_loop(self, rng):
        cam = CAMCrossbar(CAMConfig(rows=32, bits=5))
        cam.program_codes(np.arange(32))
        queries = rng.integers(0, 32, size=10)
        batch = cam.search_many(queries)
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(batch[i], cam.search(int(query)))

    def test_descending_storage_order(self):
        cam = CAMCrossbar(CAMConfig(rows=8, bits=3))
        cam.program_codes(np.arange(7, -1, -1))
        assert cam.match_index(7) == 0
        assert cam.match_index(0) == 7

    def test_program_validation(self):
        cam = CAMCrossbar(CAMConfig(rows=4, bits=3))
        with pytest.raises(ValueError):
            cam.program_codes(np.arange(5))  # too many
        with pytest.raises(ValueError):
            cam.program_codes(np.array([8]))  # out of range
        with pytest.raises(ValueError):
            cam.program_codes(np.array([], dtype=np.int64))

    def test_search_before_program_raises(self):
        with pytest.raises(RuntimeError):
            CAMCrossbar().search(0)

    def test_search_error_injection_flips_some_matches(self):
        cam = CAMCrossbar(CAMConfig(rows=64, bits=6, search_error_rate=0.2, seed=0))
        cam.program_codes(np.arange(64))
        matches = cam.search_many(np.arange(64))
        # with a 20% flip rate, the result cannot be a perfect identity matrix
        assert not np.array_equal(matches, np.eye(64, dtype=np.int64))

    def test_costs_positive_and_scale_with_rows(self):
        small = CAMCrossbar(CAMConfig(rows=64, bits=9))
        large = CAMCrossbar(CAMConfig(rows=512, bits=9))
        assert large.search_energy_j() > small.search_energy_j()
        assert large.area_um2() > small.area_um2()
        assert small.search_latency_s() > 0

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_search_is_exact_for_any_stored_code(self, query):
        cam = CAMCrossbar(CAMConfig(rows=256, bits=8))
        cam.program_codes(np.arange(256))
        assert cam.match_index(query) == query


class TestLUT:
    def test_exponential_entries_match_paper_rule(self):
        # Fig. 2: WL_i = round(e^{x_i} * 2^m) * 2^{-m}, m = 4
        args = np.array([0.0, -1.0, -2.0, -3.0])
        entries = exponential_lut_entries(args, frac_bits=4)
        np.testing.assert_allclose(entries, [1.0, 0.375, 0.125, 0.0625])

    def test_exponential_entries_round_to_zero_for_large_negative(self):
        assert exponential_lut_entries(np.array([-4.0]), 4)[0] == 0.0

    def test_program_and_read_row(self):
        lut = LUTCrossbar(LUTConfig(rows=16, value_bits=8, frac_bits=4))
        values = exponential_lut_entries(-np.arange(16) * 0.25, 4)
        lut.program_values(values)
        for row in (0, 5, 15):
            assert lut.read_row(row) == pytest.approx(values[row])

    def test_read_onehot(self):
        lut = LUTCrossbar(LUTConfig(rows=8, value_bits=8, frac_bits=4))
        lut.program_values(np.linspace(0, 10, 8))
        onehot = np.zeros(8, dtype=int)
        onehot[3] = 1
        assert lut.read_onehot(onehot) == pytest.approx(lut.read_row(3))
        with pytest.raises(ValueError):
            lut.read_onehot(np.zeros(8, dtype=int))
        with pytest.raises(ValueError):
            lut.read_onehot(np.ones(8, dtype=int))

    def test_read_rows_vectorised(self):
        lut = LUTCrossbar(LUTConfig(rows=8, value_bits=10, frac_bits=4))
        lut.program_values(np.arange(8, dtype=float))
        out = lut.read_rows(np.array([1, 3, 5]))
        np.testing.assert_allclose(out, [1.0, 3.0, 5.0])

    def test_program_validation(self):
        lut = LUTCrossbar(LUTConfig(rows=4, value_bits=6, frac_bits=4))
        with pytest.raises(ValueError):
            lut.program_values(np.array([-1.0]))
        with pytest.raises(ValueError):
            lut.program_values(np.full(5, 1.0))
        with pytest.raises(ValueError):
            lut.program_values(np.array([lut.config.max_value + 1.0]))

    def test_read_before_program_raises(self):
        with pytest.raises(RuntimeError):
            LUTCrossbar().read_row(0)

    def test_costs_positive(self):
        lut = LUTCrossbar(LUTConfig(rows=256, value_bits=18, frac_bits=4))
        assert lut.read_latency_s() > 0
        assert lut.read_energy_j() > 0
        assert lut.area_um2() > 0


class TestWriteVerifyProgrammer:
    def test_iterations_increase_with_tighter_tolerance(self):
        loose = WriteVerifyProgrammer(config=ProgrammingConfig(tolerance=0.1))
        tight = WriteVerifyProgrammer(config=ProgrammingConfig(tolerance=0.005))
        assert tight.iterations_required() > loose.iterations_required()

    def test_iterations_capped(self):
        programmer = WriteVerifyProgrammer(
            config=ProgrammingConfig(tolerance=1e-6, max_iterations=5)
        )
        assert programmer.iterations_required() == 5

    def test_program_array_costs_scale_with_size(self):
        programmer = WriteVerifyProgrammer()
        small = programmer.program_array(64, 64)
        large = programmer.program_array(128, 128)
        assert large.total_energy_j > small.total_energy_j
        assert large.total_latency_s > small.total_latency_s
        assert large.num_cells == 128 * 128

    def test_row_parallel_faster_than_serial(self):
        programmer = WriteVerifyProgrammer()
        parallel = programmer.program_array(64, 64, row_parallel=True)
        serial = programmer.program_array(64, 64, row_parallel=False)
        assert parallel.total_latency_s < serial.total_latency_s
        assert parallel.total_energy_j == pytest.approx(serial.total_energy_j)

    def test_achieved_conductance_within_tolerance_band(self):
        programmer = WriteVerifyProgrammer(config=ProgrammingConfig(tolerance=0.02))
        target = np.full(5000, 5e-6)
        achieved = programmer.achieved_conductance(target, seed=1)
        relative = np.abs(achieved / target - 1.0)
        assert np.percentile(relative, 99) < 0.07

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            WriteVerifyProgrammer().program_array(0, 10)
