"""STAR's RRAM softmax engine: CAM/SUB + exponential unit + divider.

This is the paper's central contribution.  The engine processes softmax rows
(rows of the attention-score matrix) as follows:

1. the **CAM/SUB crossbar** quantises the scores, finds ``x_max`` by CAM
   search and produces the non-negative differences ``x_max - x_i``
   (:mod:`repro.core.cam_sub`);
2. the **exponential unit** looks every difference up in the CAM/LUT pair,
   accumulates the per-level histogram in counters and produces the
   denominator with one VMM-crossbar pass (:mod:`repro.core.exponent`);
3. the **divider** normalises each exponential by the denominator
   (:mod:`repro.core.divider`).

Two simulation backends share these stages:

* the **batched backend** (:meth:`RRAMSoftmaxEngine.softmax_batch`) runs a
  whole ``(num_rows, seq_len)`` score block in pure vectorized NumPy with no
  Python-level per-row loop — this is what :meth:`RRAMSoftmaxEngine.softmax`
  uses and what makes BERT-scale runs (millions of rows) tractable;
* the **row backend** (:meth:`RRAMSoftmaxEngine.softmax_row_trace`)
  materializes every matchline vector of one row, exposes all intermediates,
  and is the only path that can inject CAM search errors
  (``config.cam_search_error_rate``); :meth:`softmax` falls back to it
  automatically when search errors are enabled.

With ideal devices both backends are bit-identical to each other and to the
functional :class:`repro.nn.softmax_models.FixedPointSoftmax` model.

Cost accounting no longer rides the data path: every functional call
accumulates an :class:`~repro.core.access_stats.AccessStats` value
(``engine.access_stats``), and area / power / latency / energy and the
Table I ledger are derived analytically from stats via
:meth:`energy_j_of` / :meth:`latency_s_of` / :meth:`ledger_of`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.core.access_stats import AccessStats
from repro.core.cam_sub import CamSubCrossbar
from repro.core.config import SoftmaxEngineConfig
from repro.core.divider import DividerUnit
from repro.core.exponent import ExponentialUnit
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.validation import as_1d_float_array

__all__ = ["SoftmaxRowTrace", "RRAMSoftmaxEngine"]


@dataclass(frozen=True)
class SoftmaxRowTrace:
    """Intermediate values of one row for debugging and tests."""

    quantized_scores: np.ndarray
    max_value: float
    differences: np.ndarray
    exponentials: np.ndarray
    denominator: float
    probabilities: np.ndarray


class RRAMSoftmaxEngine:
    """The complete RRAM-crossbar softmax engine."""

    name = "STAR RRAM softmax"

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        self.cam_sub = CamSubCrossbar(self.config)
        self.exponential = ExponentialUnit(self.config)
        self.divider = DividerUnit(bits=self.config.divider_bits)
        self.rows_processed = 0
        self.access_stats = AccessStats()

    @property
    def fmt(self) -> FixedPointFormat:
        """The fixed-point input format the engine is configured for."""
        return self.config.fmt

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def softmax_row(self, scores: np.ndarray) -> np.ndarray:
        """Softmax of a single score vector (cycle-accurate row backend)."""
        return self.softmax_row_trace(scores).probabilities

    def softmax_row_trace(self, scores: np.ndarray) -> SoftmaxRowTrace:
        """Softmax of a single score vector, returning every intermediate."""
        vector = as_1d_float_array(scores, "scores")
        cam_result = self.cam_sub.process(vector)
        exp_result = self.exponential.process(cam_result.difference_codes)
        probabilities = self.divider.divide(exp_result.exponentials, exp_result.denominator)
        self.rows_processed += 1
        self.access_stats += AccessStats.for_block(
            1,
            vector.size,
            lut_reads=vector.size - exp_result.misses,
            counter_increments=int(
                np.count_nonzero(
                    cam_result.difference_codes < self.exponential.active_levels
                )
            ),
            cam_misses=exp_result.misses,
        )
        return SoftmaxRowTrace(
            # quantisation already happened inside the CAM/SUB pass; reuse it
            quantized_scores=cam_result.quantized_scores,
            max_value=cam_result.max_value,
            differences=cam_result.differences,
            exponentials=exp_result.exponentials,
            denominator=exp_result.denominator,
            probabilities=probabilities,
        )

    def softmax_batch(self, scores: np.ndarray) -> np.ndarray:
        """Softmax of every row of a ``(num_rows, seq_len)`` score block.

        The vectorized batch backend: one CAM/SUB pass, one exponential-unit
        pass and one divider pass over the whole block, with zero Python
        per-row loops.  Bit-identical to the row backend (and to
        :class:`~repro.nn.softmax_models.FixedPointSoftmax`) under ideal
        devices; requires ``cam_search_error_rate == 0`` — matchline flips
        can only be simulated by the row backend.
        """
        block = np.asarray(scores, dtype=np.float64)
        if block.ndim != 2:
            raise ValueError(
                f"scores must be a 2D (num_rows, seq_len) block, got shape {block.shape}"
            )
        num_rows, seq_len = block.shape
        if num_rows == 0:
            return block.copy()
        if seq_len < 1:
            raise ValueError("score rows must not be empty")

        cam_result = self.cam_sub.process_batch(block)
        exp_result = self.exponential.process_batch(cam_result.difference_codes)
        # the exponentials buffer is private to this call, so the divider may
        # normalise it in place
        probabilities = self.divider.divide_batch(
            exp_result.exponentials, exp_result.denominators, out=exp_result.exponentials
        )

        misses = int(exp_result.misses.sum())
        self.rows_processed += num_rows
        self.access_stats += AccessStats.for_block(
            num_rows,
            seq_len,
            lut_reads=num_rows * seq_len - misses,
            counter_increments=exp_result.counted,
            cam_misses=misses,
        )
        return probabilities

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Softmax along ``axis`` of an arbitrary-rank array.

        Flattens every other axis into a batch and dispatches to the
        vectorized :meth:`softmax_batch` backend; only when CAM search
        errors are configured does it fall back to the row-by-row
        cycle-accurate path (error injection needs real matchline vectors).
        """
        arr = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(arr, axis, -1)
        flat = moved.reshape(-1, moved.shape[-1])
        if self.config.cam_search_error_rate > 0.0:
            out = np.empty_like(flat)
            for i in range(flat.shape[0]):
                out[i] = self.softmax_row(flat[i])
        else:
            out = self.softmax_batch(flat)
        return np.moveaxis(out.reshape(moved.shape), -1, axis)

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Alias for :meth:`softmax`, so the engine plugs into the NN layers."""
        return self.softmax(x, axis=axis)

    # ------------------------------------------------------------------ #
    # costs (derived analytically from access statistics)
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total engine area: both crossbar groups plus the divider."""
        return (
            self.cam_sub.area_um2()
            + self.exponential.area_um2()
            + self.divider.area_um2()
        )

    def area_mm2(self) -> float:
        """Total engine area in mm^2."""
        return self.area_um2() * 1e-6

    def stats_for(self, num_rows: int, seq_len: int) -> AccessStats:
        """Idealized access statistics of a ``num_rows x seq_len`` block.

        Uses the closed-form per-row accounting of the paper's cost model
        (every element reads the LUT and bumps a counter); the live
        ``access_stats`` of a functional run additionally reflects observed
        CAM misses.
        """
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return AccessStats.for_block(num_rows, seq_len)

    def energy_j_of(self, stats: AccessStats) -> float:
        """Total energy of the accesses recorded in ``stats``."""
        return (
            self.cam_sub.energy_j_of(stats)
            + self.exponential.energy_j_of(stats)
            + stats.divides * self.divider.divide_energy_j()
        )

    def latency_s_of(self, stats: AccessStats, parallel_dividers: int = 4) -> float:
        """Latency of the accesses in ``stats`` on one engine (serial rows).

        The divider stage is provisioned with a small number of parallel
        sequential dividers; divisions of one row overlap with the CAM/LUT
        processing of the next, so only the residual (non-overlapped) share
        is charged here.
        """
        if parallel_dividers < 1:
            raise ValueError(f"parallel_dividers must be >= 1, got {parallel_dividers}")
        cam_sub = self.cam_sub.latency_s_of(stats)
        exponent = self.exponential.latency_s_of(stats)
        divide_passes = -(-stats.divides // parallel_dividers)
        divide = divide_passes * self.divider.divide_latency_s()
        overlap = min(divide, cam_sub + exponent)
        return cam_sub + exponent + divide - 0.5 * overlap

    def ledger_of(self, stats: AccessStats) -> EnergyLedger:
        """Per-component ledger of the accesses in ``stats`` (Table I shape)."""
        ledger = EnergyLedger()
        ledger.record(
            "CAM/SUB crossbar",
            energy_j=self.cam_sub.energy_j_of(stats),
            latency_s=self.cam_sub.latency_s_of(stats),
        )
        ledger.record_area("CAM/SUB crossbar", self.cam_sub.area_um2())
        ledger.record(
            "exponential unit (CAM+LUT+VMM+counters)",
            energy_j=self.exponential.energy_j_of(stats),
            latency_s=self.exponential.latency_s_of(stats),
        )
        ledger.record_area(
            "exponential unit (CAM+LUT+VMM+counters)", self.exponential.area_um2()
        )
        ledger.record(
            "divider",
            energy_j=stats.divides * self.divider.divide_energy_j(),
            latency_s=stats.divides * self.divider.divide_latency_s(),
        )
        ledger.record_area("divider", self.divider.area_um2())
        return ledger

    def row_latency_s(self, seq_len: int, parallel_dividers: int = 4) -> float:
        """Latency of one softmax row of ``seq_len`` elements."""
        return self.latency_s_of(self.stats_for(1, seq_len), parallel_dividers)

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of one softmax row of ``seq_len`` elements."""
        return self.energy_j_of(self.stats_for(1, seq_len))

    def batch_latency_s(self, num_rows: int, seq_len: int) -> float:
        """Modeled latency of a score block on one serially-fed engine."""
        return self.latency_s_of(self.stats_for(num_rows, seq_len))

    def batch_energy_j(self, num_rows: int, seq_len: int) -> float:
        """Modeled energy of a score block."""
        return self.energy_j_of(self.stats_for(num_rows, seq_len))

    def power_w(self, seq_len: int = 128) -> float:
        """Average power while continuously processing rows of ``seq_len``."""
        return self.row_energy_j(seq_len) / self.row_latency_s(seq_len)

    def element_energy_j(self) -> float:
        """Average energy per softmax element at a representative row length."""
        seq_len = 128
        return self.row_energy_j(seq_len) / seq_len

    def row_ledger(self, seq_len: int) -> EnergyLedger:
        """Per-component ledger for one softmax row (used by Table I)."""
        return self.ledger_of(self.stats_for(1, seq_len))

    def throughput_rows_per_s(self, seq_len: int = 128) -> float:
        """Softmax rows per second at full utilisation."""
        return 1.0 / self.row_latency_s(seq_len)
