"""Tests for fleet heterogeneity, idle-power accounting and linear pricing.

The regression the roadmap asked for: a fleet mixing chips with different
``ChipResources`` (tile counts), not just scalar speedups, must show the
expected per-chip utilization split — and energy per query must include
idle/leakage power over the makespan while keeping the active-only figure.
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.batch_cost import BatchCostModel
from repro.core.config import MatMulEngineConfig, STARConfig
from repro.nn.bert import BertConfig
from repro.serving import (
    ChipFleet,
    FixedServiceModel,
    LinearServiceModel,
    NO_BATCHING,
    PoissonArrivals,
    PricingCache,
    Request,
    ServingSimulator,
    StarServiceModel,
)

SMALL_BERT = BertConfig(num_layers=2)


def star_model(num_tiles: int, cache: PricingCache) -> StarServiceModel:
    accelerator = STARAccelerator(
        STARConfig(matmul=MatMulEngineConfig(num_tiles=num_tiles)),
        batch_cost=BatchCostModel.streamed(),
    )
    return StarServiceModel(accelerator=accelerator, bert_config=SMALL_BERT, cache=cache)


class TestHeterogeneousFleets:
    def test_mixed_tile_counts_split_utilization_as_expected(self):
        cache = PricingCache()
        big = star_model(96, cache)
        small = star_model(16, cache)
        # a 16-tile chip needs more waves per GEMM, so the same batch
        # occupies it strictly longer than the 96-tile chip
        assert small.batch_latency_s(1, 64) > big.batch_latency_s(1, 64)
        fleet = ChipFleet(service_models=[big, small])
        requests = PoissonArrivals(
            0.5 / small.batch_latency_s(1, 64), seq_len=64, seed=5
        ).generate(400)
        report = ServingSimulator(fleet, NO_BATCHING).run(requests)
        assert report.num_requests == 400
        # both chips work, their utilizations differ, and the big-tile chip
        # turns requests around faster so it completes more of them
        utils = [report.chip_utilization(c) for c in range(2)]
        assert utils[0] > 0 and utils[1] > 0
        assert utils[0] != pytest.approx(utils[1], rel=0.05)
        served_big = sum(1 for r in report.requests if r.chip == 0)
        served_small = sum(1 for r in report.requests if r.chip == 1)
        assert served_big > served_small

    def test_service_models_and_speedups_compose(self):
        base = FixedServiceModel(request_latency_s=1.0)
        fleet = ChipFleet(
            service_models=[base, FixedServiceModel(request_latency_s=2.0)],
            speedups=(1.0, 2.0),
        )
        assert fleet.batch_latency_s(0, 1, 128) == pytest.approx(1.0)
        assert fleet.batch_latency_s(1, 1, 128) == pytest.approx(1.0)  # 2.0 / 2x

    def test_fleet_argument_validation(self):
        base = FixedServiceModel(request_latency_s=1.0)
        with pytest.raises(ValueError):
            ChipFleet()  # neither form
        with pytest.raises(ValueError):
            ChipFleet(base, service_models=[base])  # both forms
        with pytest.raises(ValueError):
            ChipFleet(service_models=[])
        with pytest.raises(ValueError):
            ChipFleet(service_models=[base, base], num_chips=3)
        # num_chips inferred from the model sequence
        assert ChipFleet(service_models=[base, base]).num_chips == 2


class TestIdlePower:
    def test_idle_energy_charged_over_unoccupied_time(self):
        model = FixedServiceModel(request_latency_s=1.0, request_energy_j=2.0, idle_power_w=0.5)
        requests = [
            Request(index=0, arrival_s=0.0, seq_len=128),
            Request(index=1, arrival_s=3.0, seq_len=128),
        ]
        report = ServingSimulator(ChipFleet(model), NO_BATCHING).run(requests)
        # makespan 4s, busy 2s -> 2s idle at 0.5 W = 1 J of leakage
        assert report.makespan_s == pytest.approx(4.0)
        assert report.idle_energy_j == pytest.approx(1.0)
        assert report.energy_j == pytest.approx(4.0)  # active only
        assert report.active_energy_per_query_j == pytest.approx(2.0)
        assert report.energy_per_query_j == pytest.approx(2.5)
        assert report.summary()["active_energy_per_query_j"] == pytest.approx(2.0)
        assert "active only" in report.format_table()

    def test_zero_idle_power_keeps_old_figures(self):
        model = FixedServiceModel(request_latency_s=1.0, request_energy_j=2.0)
        report = ServingSimulator(ChipFleet(model), NO_BATCHING).run(
            [Request(index=0, arrival_s=0.0, seq_len=128)]
        )
        assert report.idle_energy_j == 0.0
        assert report.energy_per_query_j == report.active_energy_per_query_j == 2.0

    def test_star_chip_declares_idle_power(self):
        model = star_model(96, PricingCache())
        assert model.idle_power_w == pytest.approx(
            0.1 * model.accelerator.power_w(128)
        )

    def test_low_load_energy_per_query_exceeds_active_only(self):
        model = star_model(96, PricingCache())
        service = model.batch_latency_s(1, 64)
        requests = PoissonArrivals(0.05 / service, seq_len=64, seed=1).generate(50)
        report = ServingSimulator(ChipFleet(model), NO_BATCHING).run(requests)
        # a ~5%-utilized chip leaks for most of the makespan
        assert report.energy_per_query_j > 2 * report.active_energy_per_query_j


class TestLinearServiceModel:
    def test_prices_batches_linearly(self):
        base = star_model(96, PricingCache())
        linear = LinearServiceModel(base)
        single = base.batch_latency_s(1, 64)
        assert linear.batch_latency_s(8, 64) == pytest.approx(8 * single)
        assert linear.batch_energy_j(8, 64) == pytest.approx(
            8 * base.batch_energy_j(1, 64)
        )
        assert linear.idle_power_w == base.idle_power_w
        # the batch-aware model beats its own linearization
        assert base.batch_latency_s(8, 64) < linear.batch_latency_s(8, 64)

    def test_star_batch_service_time_is_sublinear(self):
        base = star_model(96, PricingCache())
        single = base.batch_latency_s(1, 64)
        assert base.batch_latency_s(32, 64) <= 0.6 * 32 * single

    def test_conflicting_accelerator_and_batch_cost_rejected(self):
        with pytest.raises(ValueError):
            StarServiceModel(
                accelerator=STARAccelerator(), batch_cost=BatchCostModel.legacy()
            )

    def test_system_overhead_is_part_of_the_cache_fingerprint(self):
        # energy rides the chip's power, which includes the system
        # overhead: models differing only there must never share entries
        from dataclasses import replace

        from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD
        from repro.core.accelerator import ChipResources

        cache = PricingCache()
        base = StarServiceModel(cache=cache)
        hot = StarServiceModel(
            accelerator=STARAccelerator(
                resources=ChipResources(
                    system_overhead=replace(DEFAULT_SYSTEM_OVERHEAD, io_power_w=40.0)
                ),
                batch_cost=BatchCostModel.streamed(),
            ),
            cache=cache,
        )
        assert hot.batch_energy_j(1, 128) > base.batch_energy_j(1, 128)
        assert len(cache) == 2
