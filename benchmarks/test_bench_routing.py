"""Routing benchmark: the cost oracle's win and the router's overhead.

Two gates guard the multi-queue router:

* **Win** — 30k requests of skewed-length traffic (85% short, 15% long)
  through a mixed big/small fleet complete in under a second of wall
  time, and shortest-expected-delay routing with stealing beats the
  global FIFO on goodput while cutting p99 to at most 0.8x — the
  length-blind queue pads mixed batches to the long length and parks
  long requests on small chips, the oracle does not.
* **Overhead** — on a homogeneous fleet with free links the router's
  extra bookkeeping (route decision per request, per-queue dispatch
  sweep) costs at most 1.2x the global-FIFO wall for the same traffic.

The service model here is a deliberately cheap per-token pricing (no
accelerator schedules) so the benchmark times the *event loop and
router*, not the pricing.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    NetworkModel,
    NO_BATCHING,
    PoissonArrivals,
    Router,
    ServingSimulator,
    SLOClass,
    SLOPolicy,
)

from conftest import best_of, record

SHORT_LEN, LONG_LEN = 64, 512
NUM_REQUESTS = 30_000
RATE_RPS = 10_000.0


class PerTokenModel:
    """Length-sensitive pricing: ``batch x (base + seq_len x per_token)``."""

    def __init__(self, base_s: float, per_token_s: float) -> None:
        self.base_s = base_s
        self.per_token_s = per_token_s

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return batch_size * (self.base_s + seq_len * self.per_token_s)

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return 0.0


def mixed_fleet() -> ChipFleet:
    # the big chip (0) pays a fixed setup but almost nothing per token:
    # shorts are marginally cheaper on the small chips, longs ~5x cheaper
    # on the big one — the shape a cost oracle can exploit and a
    # length-blind queue cannot
    small = lambda: PerTokenModel(base_s=0.0, per_token_s=3.5e-6)
    return ChipFleet(
        service_models=[
            PerTokenModel(base_s=2.4e-4, per_token_s=2.5e-7),
            small(),
            small(),
            small(),
        ]
    )


def skewed_requests():
    lens = (SHORT_LEN,) * 17 + (LONG_LEN,) * 3
    slo = SLOPolicy((SLOClass("interactive", 20e-3), SLOClass("batch", 200e-3)))
    return slo.tag_by_length(
        PoissonArrivals(RATE_RPS, seq_len=lens, seed=5).generate(NUM_REQUESTS),
        boundaries=(SHORT_LEN,),
    )


def goodput_rps(report) -> float:
    return (report.num_requests - report.num_deadline_misses()) / report.makespan_s


@pytest.mark.smoke
def test_bench_routing_beats_global_fifo(benchmark):
    """30k skewed requests: SED+stealing vs the global queue, sub-second."""
    requests = skewed_requests()
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=1e-3)
    router = Router(
        policy="shortest_expected_delay",
        network=NetworkModel(link_latency_s=2e-5, steal_latency_s=1e-5),
    )

    routed = ServingSimulator(mixed_fleet(), batcher, router=router)
    report = benchmark.pedantic(routed.run, args=(requests,), rounds=1, iterations=1)
    wall = benchmark.stats["mean"]

    fifo_report = ServingSimulator(mixed_fleet(), batcher).run(requests)

    sed_goodput, fifo_goodput = goodput_rps(report), goodput_rps(fifo_report)
    record(
        benchmark,
        wall_s=round(wall, 3),
        requests_per_wall_second=round(NUM_REQUESTS / wall),
        sed_goodput_rps=round(sed_goodput, 1),
        fifo_goodput_rps=round(fifo_goodput, 1),
        sed_p99_ms=round(report.p99_latency_s * 1e3, 2),
        fifo_p99_ms=round(fifo_report.p99_latency_s * 1e3, 2),
        stolen_batches=report.routing.stolen_batches,
    )
    assert report.num_requests == NUM_REQUESTS
    assert wall < 1.0
    # the headline: the cost oracle wins on both axes at this load
    assert sed_goodput >= fifo_goodput
    assert report.p99_latency_s <= 0.8 * fifo_report.p99_latency_s


@pytest.mark.smoke
def test_bench_router_overhead(benchmark):
    """Per-chip queues on a homogeneous fleet cost <= 1.2x the global FIFO."""
    requests = PoissonArrivals(3000.0, seq_len=SHORT_LEN, seed=6).generate(
        NUM_REQUESTS
    )
    fleet_kwargs = dict(
        service_model=PerTokenModel(base_s=0.0, per_token_s=2e-5), num_chips=4
    )

    def run_global():
        ServingSimulator(ChipFleet(**fleet_kwargs), NO_BATCHING).run(requests)

    def run_routed():
        ServingSimulator(
            ChipFleet(**fleet_kwargs),
            NO_BATCHING,
            router=Router(policy="shortest_expected_delay"),
        ).run(requests)

    global_wall = best_of(run_global, 3)
    routed_wall = benchmark.pedantic(
        lambda: best_of(run_routed, 3), rounds=1, iterations=1
    )
    overhead = routed_wall / global_wall
    record(
        benchmark,
        global_wall_s=round(global_wall, 3),
        routed_wall_s=round(routed_wall, 3),
        overhead_x=round(overhead, 3),
    )
    assert overhead <= 1.2
