"""Tests for repro.workloads: score profiles, classification task, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.softmax_models import FixedPointSoftmax, ReferenceSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT, FixedPointFormat
from repro.workloads.classification import ClassificationTask
from repro.workloads.scores import (
    CNEWS_PROFILE,
    COLA_PROFILE,
    DATASET_PROFILES,
    MRPC_PROFILE,
    AttentionScoreGenerator,
    ScoreProfile,
)
from repro.workloads.sweeps import BitwidthSweep, INTRO_SEQUENCE_SWEEP, PRECISION_SWEEP, SequenceLengthSweep


class TestScoreProfiles:
    def test_three_paper_datasets_registered(self):
        assert set(DATASET_PROFILES) == {"CNEWS", "MRPC", "CoLA"}

    def test_cola_has_smaller_range(self):
        assert COLA_PROFILE.score_range < CNEWS_PROFILE.score_range

    def test_mrpc_has_finer_top_structure(self):
        assert MRPC_PROFILE.top_cluster_spacing < CNEWS_PROFILE.top_cluster_spacing

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            ScoreProfile("bad", score_range=-1, top_cluster_size=2, top_cluster_spacing=0.5)
        with pytest.raises(ValueError):
            ScoreProfile("bad", score_range=10, top_cluster_size=0, top_cluster_spacing=0.5)


class TestScoreGenerator:
    def test_row_shape_and_determinism(self):
        gen_a = AttentionScoreGenerator(CNEWS_PROFILE, seed=3)
        gen_b = AttentionScoreGenerator(CNEWS_PROFILE, seed=3)
        rows_a = gen_a.rows(4, 32)
        rows_b = gen_b.rows(4, 32)
        assert rows_a.shape == (4, 32)
        np.testing.assert_allclose(rows_a, rows_b)

    def test_different_seeds_differ(self):
        a = AttentionScoreGenerator(CNEWS_PROFILE, seed=0).rows(2, 32)
        b = AttentionScoreGenerator(CNEWS_PROFILE, seed=1).rows(2, 32)
        assert not np.allclose(a, b)

    def test_observed_range_matches_profile(self, dataset_profile):
        generator = AttentionScoreGenerator(dataset_profile, seed=0)
        observed = generator.observed_range(num_rows=512)
        assert observed == pytest.approx(dataset_profile.score_range, rel=0.1)

    def test_range_implies_paper_integer_bits(self):
        for profile, expected_int_bits in ((CNEWS_PROFILE, 6), (MRPC_PROFILE, 6), (COLA_PROFILE, 5)):
            observed = AttentionScoreGenerator(profile, seed=0).observed_range(256)
            assert int(np.ceil(np.log2(observed))) == expected_int_bits

    def test_score_matrix_square(self):
        matrix = AttentionScoreGenerator(COLA_PROFILE, seed=0).score_matrix(16)
        assert matrix.shape == (16, 16)

    def test_rows_rejects_bad_arguments(self):
        generator = AttentionScoreGenerator(CNEWS_PROFILE)
        with pytest.raises(ValueError):
            generator.rows(0)
        with pytest.raises(ValueError):
            generator.rows(1, seq_len=2)

    def test_row_max_is_positive_and_min_is_negative(self):
        rows = AttentionScoreGenerator(CNEWS_PROFILE, seed=5).rows(16)
        assert np.all(rows.max(axis=1) > 0)
        assert np.all(rows.min(axis=1) < 0)


class TestClassificationTask:
    def test_reference_softmax_gets_perfect_accuracy(self):
        task = ClassificationTask(CNEWS_PROFILE, num_examples=12, seq_len=16, seed=0)
        result = task.evaluate(ReferenceSoftmax())
        assert result.accuracy == 1.0
        assert result.num_examples == 12

    def test_reasonable_precision_keeps_high_accuracy(self):
        task = ClassificationTask(CNEWS_PROFILE, num_examples=16, seq_len=16, seed=1)
        result = task.evaluate(FixedPointSoftmax(CNEWS_FORMAT))
        assert result.accuracy >= 0.75

    def test_very_low_precision_degrades_more(self):
        task = ClassificationTask(MRPC_PROFILE, num_examples=24, seq_len=16, seed=2)
        good = task.evaluate(FixedPointSoftmax(FixedPointFormat(6, 3))).accuracy
        bad = task.evaluate(FixedPointSoftmax(FixedPointFormat(3, 1))).accuracy
        assert bad <= good

    def test_accuracy_drop_consistent_with_evaluate(self):
        task = ClassificationTask(COLA_PROFILE, num_examples=8, seq_len=16, seed=3)
        softmax_fn = FixedPointSoftmax(CNEWS_FORMAT)
        assert task.accuracy_drop(softmax_fn) == pytest.approx(
            1.0 - task.evaluate(softmax_fn).accuracy
        )

    def test_labels_cached_and_deterministic(self):
        task = ClassificationTask(CNEWS_PROFILE, num_examples=8, seq_len=16, seed=4)
        labels_a = task.reference_labels()
        labels_b = task.reference_labels()
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ClassificationTask(CNEWS_PROFILE, num_examples=0)
        with pytest.raises(ValueError):
            ClassificationTask(CNEWS_PROFILE, num_classes=1)


class TestSweeps:
    def test_intro_sweep_includes_paper_lengths(self):
        lengths = list(INTRO_SEQUENCE_SWEEP)
        assert 128 in lengths and 512 in lengths
        assert lengths == sorted(lengths)

    def test_precision_sweep_contains_paper_formats(self):
        formats = list(PRECISION_SWEEP)
        assert (6, 2) in formats  # CNEWS
        assert (6, 3) in formats  # MRPC
        assert (5, 2) in formats  # CoLA
        assert PRECISION_SWEEP.total_bits() == tuple(i + f for i, f in formats)

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            SequenceLengthSweep(lengths=())
        with pytest.raises(ValueError):
            SequenceLengthSweep(lengths=(0,))
        with pytest.raises(ValueError):
            BitwidthSweep(formats=((0, 1),))

    def test_len(self):
        assert len(SequenceLengthSweep(lengths=(64, 128))) == 2
