"""Analyses backing each table and figure: bit-width, accuracy, efficiency, ablations."""

from repro.analysis.ablation import (
    AblationSuite,
    NoiseAblationRow,
    PipelineAblationRow,
    PrecisionAblationRow,
)
from repro.analysis.accuracy import AccuracyAnalyzer, FidelityMetrics, PrecisionSweepPoint
from repro.analysis.bitwidth import BitwidthAnalyzer, BitwidthRequirement
from repro.analysis.breakdown import (
    BreakdownRow,
    LatencyBreakdownAnalyzer,
    StarScheduleAnalyzer,
    StarScheduleRow,
)
from repro.analysis.efficiency import EfficiencyComparison, Figure3Results
from repro.analysis.serving import (
    MD1ValidationRow,
    ServingAnalyzer,
    ServingSweepRow,
    SLOServingAnalyzer,
    SLOSweepRow,
)

__all__ = [
    "BitwidthAnalyzer",
    "BitwidthRequirement",
    "AccuracyAnalyzer",
    "FidelityMetrics",
    "PrecisionSweepPoint",
    "LatencyBreakdownAnalyzer",
    "BreakdownRow",
    "StarScheduleAnalyzer",
    "StarScheduleRow",
    "EfficiencyComparison",
    "Figure3Results",
    "AblationSuite",
    "PipelineAblationRow",
    "PrecisionAblationRow",
    "NoiseAblationRow",
    "ServingAnalyzer",
    "ServingSweepRow",
    "MD1ValidationRow",
    "SLOServingAnalyzer",
    "SLOSweepRow",
]
