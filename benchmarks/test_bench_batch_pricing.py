"""Batch-aware pricing benchmark and amortisation smoke gates.

The whole point of the batch cost model: under streamed weights a
dispatched batch programs each stationary operand once and double-buffers
every later request's rows, so batch-32 service time must land well below
the linear ``32 x batch-1`` price — gated at the 0.6x the roadmap asked
for — while the event-driven tile-task executor stays within 5% of the
closed forms and fast enough to price sweeps with.
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.batch_cost import BatchCostModel, BatchGEMMExecutor
from repro.core.matmul_engine import GEMMShape
from repro.nn.bert import BertWorkload

from conftest import record


@pytest.mark.smoke
def test_bench_batch_amortisation_gate(benchmark):
    """Whole-model batch-32 service time <= 0.6 x (32 x batch-1) on BERT-base."""
    star = STARAccelerator(batch_cost=BatchCostModel.streamed())

    def price_sweep():
        return {
            batch: star.request_timing(
                BertWorkload(seq_len=128, batch_size=batch)
            ).latency_s
            for batch in (1, 4, 16, 32)
        }

    timings = benchmark(price_sweep)

    single = timings[1]
    ratios = {batch: timings[batch] / (batch * single) for batch in timings}
    record(
        benchmark,
        batch1_service_ms=round(single * 1e3, 3),
        batch32_service_ms=round(timings[32] * 1e3, 3),
        amortisation_ratio_b4=round(ratios[4], 3),
        amortisation_ratio_b32=round(ratios[32], 3),
    )
    # batching must amortise compute, not just dispatch
    assert timings[32] <= 0.6 * 32 * single
    # and never price any batch above its linear equivalent
    assert all(ratio <= 1.0 + 1e-12 for ratio in ratios.values())
    # monotone in batch: a bigger batch is never cheaper in absolute terms
    assert timings[1] <= timings[4] <= timings[16] <= timings[32]


@pytest.mark.smoke
def test_bench_batch_gemm_executor(benchmark):
    """The tile-task executor simulates a batch-16 FFN GEMM fast and on-formula."""
    star = STARAccelerator(batch_cost=BatchCostModel.streamed())
    engine = star.matmul_engine
    shape = GEMMShape(m=128, k=768, n=3072)  # FFN up-projection, 144 tiles
    executor = BatchGEMMExecutor(engine, star.batch_cost)

    executed = benchmark(executor.execute, shape, 16)

    analytic = engine.gemm_latency_s(shape, batch_size=16, cost_model=star.batch_cost)
    deviation = abs(executed.total_latency_s - analytic) / analytic
    record(
        benchmark,
        tile_tasks=executed.num_tasks,
        executed_ms=round(executed.total_latency_s * 1e3, 3),
        analytic_ms=round(analytic * 1e3, 3),
        deviation_pct=round(deviation * 100, 3),
        tasks_per_wall_second=round(executed.num_tasks / benchmark.stats["mean"]),
    )
    assert executed.num_tasks == 16 * 144 * 128
    assert deviation < 0.05
    # sub-second simulation of ~300k tile tasks keeps sweeps affordable
    assert benchmark.stats["mean"] < 2.0
