"""E3 — Fig. 2 behaviour: the CAM + LUT + counter + VMM exponential unit.

Checks that the stored LUT entries follow the paper's quantisation rule
``WL_i = round(e^{x_i} * 2^m) * 2^{-m}`` with m = 4 and benchmarks the unit
processing a full row of difference codes, including the single-pass VMM
summation of the denominator.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SoftmaxEngineConfig
from repro.core.exponent import ExponentialUnit
from repro.rram.lut import exponential_lut_entries
from repro.utils.fixed_point import CNEWS_FORMAT, MRPC_FORMAT

from conftest import record


def test_bench_exponential_row(benchmark):
    """Exponential lookup + histogram + VMM summation over one 128-element row."""
    config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT)
    unit = ExponentialUnit(config)
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 40, size=128)

    result = benchmark(unit.process, codes)

    assert result.denominator == np.sum(result.exponentials)
    record(
        benchmark,
        lut_rows=config.exp_rows,
        lut_frac_bits=config.lut_frac_bits,
        active_counters=unit.counters.num_counters,
        row_latency_ns=round(unit.row_latency_s(128) * 1e9, 2),
        row_energy_pj=round(unit.row_energy_j(128) * 1e12, 2),
        area_um2=round(unit.area_um2(), 1),
    )


def test_bench_lut_entries_match_paper_rule(benchmark):
    """The programmed LUT equals round(e^x * 2^4) / 2^4 for every level (Fig. 2)."""
    config = SoftmaxEngineConfig(fmt=MRPC_FORMAT)

    def build_and_check():
        unit = ExponentialUnit(config)
        levels = np.arange(unit.lut_values.size)
        expected = exponential_lut_entries(-levels * config.fmt.resolution, config.lut_frac_bits)
        np.testing.assert_allclose(unit.lut_values, expected)
        return unit.lut_values

    values = benchmark(build_and_check)

    # the Fig. 2 example values: e^0 = 1, e^-1 ~ 0.375, e^-2 ~ 0.125 at m = 4
    eight = int(round(1.0 / config.fmt.resolution))
    record(
        benchmark,
        lut_at_0=float(values[0]),
        lut_at_minus1=float(values[eight]),
        lut_at_minus2=float(values[2 * eight]),
        nonzero_entries=int(np.count_nonzero(values)),
    )
    assert values[0] == 1.0
    assert values[eight] == 0.375
    assert values[2 * eight] == 0.125
