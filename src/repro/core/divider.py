"""Digital divider performing the final softmax normalisation.

The divider is the only non-crossbar arithmetic in STAR's softmax engine:
it divides every LUT output ``e^{x_i - x_max}`` by the denominator produced
by the VMM crossbar.  It is modelled as a sequential (one-quotient-bit-per-
cycle) divider whose cost comes from
:class:`~repro.circuits.components.Divider`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.components import Divider
from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode
from repro.utils.validation import as_1d_float_array

__all__ = ["DividerUnit"]


class DividerUnit:
    """Fixed-point divider with configurable quotient precision."""

    def __init__(
        self,
        bits: int = 16,
        quotient_frac_bits: int = 0,
        tech: TechnologyNode = DEFAULT_TECHNOLOGY,
    ) -> None:
        if bits < 4:
            raise ValueError(f"divider width must be >= 4 bits, got {bits}")
        if quotient_frac_bits < 0:
            raise ValueError(
                f"quotient_frac_bits must be >= 0, got {quotient_frac_bits}"
            )
        self.bits = bits
        self.quotient_frac_bits = quotient_frac_bits
        self._cost = Divider.cost(bits, tech)
        self.divide_count = 0

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def divide(self, numerators: np.ndarray, denominator: float) -> np.ndarray:
        """Quotients ``numerators / denominator``.

        With ``quotient_frac_bits == 0`` the quotient keeps full precision;
        otherwise it is truncated to that many fractional bits, modelling a
        narrow hardware quotient.  A zero (or non-positive) denominator
        saturates to a uniform distribution, mirroring what the hardware's
        saturation logic would emit.
        """
        values = as_1d_float_array(numerators, "numerators")
        self.divide_count += values.size
        if denominator <= 0.0:
            return np.full_like(values, 1.0 / values.size)
        quotients = values / denominator
        if self.quotient_frac_bits > 0:
            scale = float(1 << self.quotient_frac_bits)
            quotients = np.floor(quotients * scale) / scale
        return quotients

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Divider area."""
        return self._cost.area_um2

    def power_w(self) -> float:
        """Divider power while active."""
        return self._cost.power_w

    def divide_latency_s(self) -> float:
        """Latency of one division (``bits`` cycles for the sequential divider)."""
        return self._cost.latency_s

    def divide_energy_j(self) -> float:
        """Energy of one division."""
        return self._cost.energy_per_op_j
