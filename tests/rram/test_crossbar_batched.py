"""Bit-identity tests for the batched crossbar VMM backend.

`AnalogCrossbar.matvec_batch` must equal a loop of per-vector `matvec`
calls *exactly* — same outputs, same access counters, same RNG stream
consumption — under every configuration: differential and single-ended
arrays, seeded read noise, programming noise, IR drop and ADC saturation.
Two freshly constructed crossbars with the same config are compared so both
paths see identical programming and identical noise streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram.crossbar import AnalogCrossbar, CrossbarAccessStats, CrossbarConfig
from repro.rram.device import RRAMDeviceConfig
from repro.rram.noise import NoiseConfig


def build(
    rows=16,
    cols=8,
    adc_bits=6,
    input_bits=8,
    differential=False,
    noise=None,
    bits_per_cell=3,
    wire_resistance_ohm=0.0,
    stats=None,
):
    config = CrossbarConfig(
        rows=rows,
        cols=cols,
        adc_bits=adc_bits,
        input_bits=input_bits,
        differential=differential,
        noise=noise or NoiseConfig(),
        device=RRAMDeviceConfig(bits_per_cell=bits_per_cell),
        wire_resistance_ohm=wire_resistance_ohm,
    )
    return AnalogCrossbar(config, stats=stats)


def assert_batch_matches_loop(make_crossbar, weights, block, quantize_output=True):
    """Program two identical crossbars; compare batched vs looped results."""
    batched_xb = make_crossbar()
    looped_xb = make_crossbar()
    batched_xb.program(weights)
    looped_xb.program(weights)
    batched = batched_xb.matvec_batch(block, quantize_output=quantize_output)
    looped = np.stack(
        [looped_xb.matvec(row, quantize_output=quantize_output) for row in block]
    )
    np.testing.assert_array_equal(batched, looped)
    assert batched_xb.stats == looped_xb.stats
    return batched


class TestBitIdentity:
    def setup_method(self):
        rng = np.random.default_rng(77)
        self.pos_weights = rng.uniform(0.1, 1.0, size=(16, 8))
        self.signed_weights = rng.normal(size=(16, 8))
        self.block = rng.uniform(0.0, 1.0, size=(9, 16))

    def test_ideal_single_ended(self):
        assert_batch_matches_loop(build, self.pos_weights, self.block)

    def test_ideal_differential(self):
        assert_batch_matches_loop(
            lambda: build(differential=True), self.signed_weights, self.block
        )

    def test_unquantized_output(self):
        assert_batch_matches_loop(
            build, self.pos_weights, self.block, quantize_output=False
        )

    @pytest.mark.parametrize("differential", [False, True])
    def test_seeded_read_noise(self, differential):
        noise = NoiseConfig(read_noise_sigma=0.05, seed=3)
        weights = self.signed_weights if differential else self.pos_weights
        assert_batch_matches_loop(
            lambda: build(differential=differential, noise=noise), weights, self.block
        )

    def test_programming_noise_and_stuck_cells(self):
        noise = NoiseConfig(
            programming_sigma=0.03,
            stuck_on_fraction=0.02,
            stuck_off_fraction=0.02,
            seed=11,
        )
        assert_batch_matches_loop(lambda: build(noise=noise), self.pos_weights, self.block)

    def test_all_noise_mechanisms_differential(self):
        noise = NoiseConfig(programming_sigma=0.02, read_noise_sigma=0.03, seed=5)
        assert_batch_matches_loop(
            lambda: build(differential=True, noise=noise), self.signed_weights, self.block
        )

    def test_ir_drop(self):
        assert_batch_matches_loop(
            lambda: build(wire_resistance_ohm=5.0), self.pos_weights, self.block
        )

    def test_ir_drop_with_read_noise(self):
        noise = NoiseConfig(read_noise_sigma=0.02, seed=9)
        assert_batch_matches_loop(
            lambda: build(wire_resistance_ohm=5.0, noise=noise),
            self.pos_weights,
            self.block,
        )

    def test_adc_saturation(self):
        # 2-bit ADC with large inputs drives the converter deep into clipping
        block = np.random.default_rng(4).uniform(0.0, 50.0, size=(6, 16))
        batched = assert_batch_matches_loop(
            lambda: build(adc_bits=2), self.pos_weights, block
        )
        assert np.all(np.isfinite(batched))

    def test_noisy_chunking_preserves_stream_order(self, monkeypatch):
        """A chunked noisy block equals the same block processed whole."""
        import repro.rram.crossbar as crossbar_mod

        noise = NoiseConfig(read_noise_sigma=0.05, seed=13)
        whole_xb = build(noise=noise)
        whole_xb.program(self.pos_weights)
        whole = whole_xb.matvec_batch(self.block)

        # force chunks of at most ~2 vectors
        per_vector = whole_xb.config.input_cycles * whole_xb._deviates_per_cycle()
        monkeypatch.setattr(crossbar_mod, "_CHUNK_DOUBLES", 2 * per_vector)
        chunked_xb = build(noise=noise)
        chunked_xb.program(self.pos_weights)
        chunked = chunked_xb.matvec_batch(self.block)
        np.testing.assert_array_equal(whole, chunked)

    def test_exact_path_chunking_is_transparent(self, monkeypatch):
        """The ideal-device path also chunks to the scratch budget, unchanged."""
        import repro.rram.crossbar as crossbar_mod

        whole_xb = build()
        whole_xb.program(self.pos_weights)
        whole = whole_xb.matvec_batch(self.block)

        monkeypatch.setattr(crossbar_mod, "_CHUNK_DOUBLES", 1)  # one row per chunk
        chunked_xb = build()
        chunked_xb.program(self.pos_weights)
        chunked = chunked_xb.matvec_batch(self.block)
        np.testing.assert_array_equal(whole, chunked)
        assert chunked_xb.stats == whole_xb.stats


class TestBatchSemantics:
    def test_accuracy_tracks_ideal(self):
        rng = np.random.default_rng(0)
        crossbar = build(rows=32, cols=16, adc_bits=12, bits_per_cell=5)
        weights = rng.uniform(0.1, 1.0, size=(32, 16))
        crossbar.program(weights)
        block = rng.uniform(0.0, 1.0, size=(12, 32))
        out = crossbar.matvec_batch(block)
        ideal = block @ weights
        assert np.max(np.abs(out - ideal)) / np.max(np.abs(ideal)) < 0.05

    def test_empty_batch(self):
        crossbar = build()
        crossbar.program(np.abs(np.random.default_rng(1).normal(size=(16, 8))))
        out = crossbar.matvec_batch(np.zeros((0, 16)))
        assert out.shape == (0, 8)
        assert crossbar.stats.vmm_ops == 0

    def test_rejects_wrong_width(self):
        crossbar = build()
        crossbar.program(np.abs(np.random.default_rng(1).normal(size=(16, 8))))
        with pytest.raises(ValueError):
            crossbar.matvec_batch(np.zeros((3, 7)))

    def test_rejects_negative_inputs(self):
        crossbar = build()
        crossbar.program(np.abs(np.random.default_rng(1).normal(size=(16, 8))))
        block = np.zeros((3, 16))
        block[1, 4] = -0.5
        with pytest.raises(ValueError):
            crossbar.matvec_batch(block)

    def test_requires_programming(self):
        with pytest.raises(RuntimeError):
            build().matvec_batch(np.zeros((2, 16)))

    def test_stats_scale_with_batch(self):
        crossbar = build(input_bits=4)
        crossbar.program(np.abs(np.random.default_rng(1).normal(size=(16, 8))))
        crossbar.matvec_batch(np.random.default_rng(2).uniform(size=(5, 16)))
        cycles = crossbar.config.input_cycles
        assert crossbar.stats.vmm_ops == 5
        assert crossbar.stats.array_activations == 5 * cycles
        assert crossbar.stats.dac_conversions == 5 * 16 * cycles
        assert crossbar.stats.adc_conversions == 5 * 8 * cycles

    def test_shared_stats_object(self):
        shared = CrossbarAccessStats()
        a = build(stats=shared)
        b = build(stats=shared)
        weights = np.abs(np.random.default_rng(1).normal(size=(16, 8)))
        a.program(weights)
        b.program(weights)
        assert shared.programming_pulses == 2 * 16 * 8
        a.matvec_batch(np.random.default_rng(2).uniform(size=(3, 16)))
        assert shared.vmm_ops == 3
        assert a.stats is shared and b.stats is shared
