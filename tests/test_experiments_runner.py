"""Tests for the experiment runner and its CLI."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.__main__ import main as cli_main


class TestRunner:
    def test_all_fourteen_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 15)}

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("e42")

    def test_e4_report_contains_paper_formats(self):
        report = run_experiment("e4")
        assert "8 (6i+2f)" in report
        assert "9 (6i+3f)" in report
        assert "7 (5i+2f)" in report

    def test_e5_report_contains_all_designs(self):
        report = run_experiment("e5")
        for name in ("CMOS baseline", "Softermax", "STAR"):
            assert name in report

    def test_e6_report_contains_star_efficiency(self):
        report = run_experiment("e6")
        assert "GOPs/s/W" in report
        assert "paper 612.66" in report

    def test_e10_report_contains_serving_metrics(self):
        report = run_experiment("e10")
        assert "Request-level serving" in report
        assert "fleet capacity" in report
        assert "M/D/1 check" in report
        assert "p50" in report and "p99" in report

    def test_e11_report_shows_graceful_degradation(self):
        report = run_experiment("e11")
        assert "Fault-injected serving" in report
        assert "baseline (no faults)" in report
        assert "shed goodput" in report and "queue goodput" in report
        assert "avail" in report

    def test_e12_report_shows_slo_control_plane(self):
        report = run_experiment("e12")
        assert "SLO-aware serving control plane" in report
        assert "fifo" in report and "edf" in report
        assert "closed-loop check" in report
        assert "autoscale" in report

    def test_e13_report_shows_fidelity_sweep(self):
        report = run_experiment("e13")
        assert "Tiered-fidelity serving" in report
        assert "sampled" in report and "x base" in report
        assert "1.000" in report  # the analytic-only baseline row

    def test_e14_report_shows_routing_win(self):
        report = run_experiment("e14")
        assert "Topology-aware routing" in report
        assert "global fifo" in report and "sed + stealing" in report
        lines = {
            line.split("  ")[0].strip(): line
            for line in report.splitlines()
            if line.startswith(("global fifo", "sed"))
        }

        def metrics(line: str) -> tuple[float, float]:
            fields = line.split()
            return float(fields[-7]), float(fields[-3])  # goodput, p99 ms

        base_goodput, base_p99 = metrics(lines["global fifo"])
        steal_goodput, steal_p99 = metrics(lines["sed + stealing"])
        nosteal_goodput, _ = metrics(lines["sed, no stealing"])
        # the headline: the cost oracle + stealing beats the global FIFO
        # on both axes, and stealing beats the oracle alone
        assert steal_goodput > base_goodput
        assert steal_p99 < base_p99
        assert steal_goodput > nosteal_goodput

    def test_case_insensitive_ids(self):
        assert run_experiment("E2") == run_experiment("e2")

    def test_run_all_subset(self):
        text = run_all(["e2", "e3"])
        assert "CAM/SUB" in text
        assert "Exponential unit" in text


class TestCLI:
    def test_list_option(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1:" in out and "e9:" in out and "e10:" in out

    def test_single_experiment(self, capsys):
        assert cli_main(["e4"]) == 0
        out = capsys.readouterr().out
        assert "bit-width" in out.lower() or "bit" in out.lower()

    def test_unknown_experiment_exits_with_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["e99"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "e99" in err
        assert "Traceback" not in err
        # the KeyError's quoted repr must not leak into the message
        assert '"unknown experiment' not in err
