"""Experiment runner: regenerate every paper table/figure as a text report."""

from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]
