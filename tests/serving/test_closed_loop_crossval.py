"""Control-plane cross-validation against closed queueing theory.

Three closed forms pin the new serving control plane:

* the closed-loop client population on one exponential-service chip is
  exactly the machine-repair M/M/1//N queue — simulated throughput and
  mean response time must land on the product-form solution;
* the MMPP arrival generator's long-run mean rate must match
  ``pi . rates`` of its generator matrix's stationary distribution;
* the hysteresis autoscaler at deterministic service has a unique fleet
  size whose utilization falls inside the band — the steady state must
  settle there whatever fleet it starts from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    Autoscaler,
    ChipFleet,
    ClosedLoopClients,
    DynamicBatcher,
    ExponentialServiceModel,
    FixedServiceModel,
    MachineRepairQueue,
    MMPPArrivals,
    NO_BATCHING,
    PoissonArrivals,
    ServingSimulator,
)


class TestClosedLoopVsMachineRepair:
    def run_closed_loop(self, num_clients, think_s, service_s, num_requests, seed=0):
        clients = ClosedLoopClients(
            num_clients=num_clients, think_s=think_s, seed=seed
        )
        model = ExponentialServiceModel(mean_s=service_s, seed=seed + 1)
        simulator = ServingSimulator(ChipFleet(model, num_chips=1), NO_BATCHING)
        return simulator.run_closed_loop(clients, num_requests)

    @pytest.mark.parametrize("num_clients", [4, 8, 16])
    def test_throughput_and_response_match_theory(self, num_clients):
        """X and R land within 5% of the M/M/1//N product form."""
        think_s, service_s = 0.010, 0.001
        report = self.run_closed_loop(num_clients, think_s, service_s, 40000)
        theory = MachineRepairQueue(
            num_clients=num_clients, think_s=think_s, service_s=service_s
        )
        assert report.throughput_rps == pytest.approx(
            theory.throughput_rps, rel=0.05
        )
        assert report.mean_latency_s == pytest.approx(
            theory.mean_latency_s, rel=0.05
        )

    def test_saturated_population_hits_the_service_bottleneck(self):
        """Many clients with little think time drive X to 1/s."""
        think_s, service_s = 0.001, 0.002
        report = self.run_closed_loop(32, think_s, service_s, 40000)
        theory = MachineRepairQueue(
            num_clients=32, think_s=think_s, service_s=service_s
        )
        assert theory.utilization > 0.99
        assert report.throughput_rps == pytest.approx(1.0 / service_s, rel=0.05)

    def test_outstanding_requests_never_exceed_population(self):
        """A closed loop can never have more requests in flight than clients."""
        num_clients = 6
        report = self.run_closed_loop(num_clients, 0.005, 0.001, 5000)
        events = sorted(
            [(r.arrival_s, 1) for r in report.requests]
            + [(r.completion_s, -1) for r in report.requests]
        )
        in_flight = peak = 0
        for _, delta in events:
            in_flight += delta
            peak = max(peak, in_flight)
        assert peak <= num_clients

    def test_littles_law_on_the_closed_loop(self):
        """N = X * (R + Z) across the whole population at steady state."""
        num_clients, think_s = 8, 0.010
        report = self.run_closed_loop(num_clients, think_s, 0.001, 40000)
        implied = report.throughput_rps * (report.mean_latency_s + think_s)
        assert implied == pytest.approx(num_clients, rel=0.05)


class TestMMPPRate:
    def test_mean_rate_matches_generator_matrix(self):
        """The generated stream's long-run rate is pi . rates within 2%."""
        arrivals = MMPPArrivals(
            rates_rps=(900.0, 150.0, 420.0),
            transitions=(
                (-4.0, 3.0, 1.0),
                (2.0, -5.0, 3.0),
                (1.5, 2.5, -4.0),
            ),
            seed=11,
        )
        requests = arrivals.generate(200_000)
        measured = (len(requests) - 1) / (
            requests[-1].arrival_s - requests[0].arrival_s
        )
        assert measured == pytest.approx(arrivals.mean_rate_rps, rel=0.02)

    def test_on_off_mean_rate(self):
        """The on/off classmethod keeps the duty-weighted mean exact."""
        arrivals = MMPPArrivals.on_off(
            burst_rate_rps=2000.0, base_rate_rps=200.0, burst_s=0.05, duty=0.25,
            seed=5,
        )
        assert arrivals.mean_rate_rps == pytest.approx(
            0.25 * 2000.0 + 0.75 * 200.0
        )
        # burstiness inflates the rate-estimator variance, so the empirical
        # check needs more arrivals and a little more slack than Poisson
        requests = arrivals.generate(300_000)
        measured = (len(requests) - 1) / (
            requests[-1].arrival_s - requests[0].arrival_s
        )
        assert measured == pytest.approx(arrivals.mean_rate_rps, rel=0.03)


class TestAutoscalerFixedPoint:
    def run_autoscaled(self, initial_chips):
        """Deterministic-service fleet with a unique in-band fleet size."""
        # lambda * s = 2.8 busy chips: utilization 0.70 at 4 awake chips is
        # the only value inside the (0.55, 0.85) band
        rate, service = 2800.0, 1e-3
        requests = PoissonArrivals(rate, seq_len=128, seed=3).generate(30000)
        scaler = Autoscaler(
            interval_s=0.05,
            scale_up_above=0.85,
            scale_down_below=0.55,
            scale_up_queue_depth=64,
            min_chips=1,
            initial_chips=initial_chips,
        )
        simulator = ServingSimulator(
            ChipFleet(FixedServiceModel(service), num_chips=8),
            DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            autoscaler=scaler,
        )
        return simulator.run(requests)

    @pytest.mark.parametrize("initial_chips", [1, 4, 8])
    def test_settles_at_the_unique_in_band_fleet_size(self, initial_chips):
        """Whatever the starting fleet, steady state is 4 awake chips."""
        report = self.run_autoscaled(initial_chips)
        # mean over the whole run includes the transient; half a chip of
        # slack around the fixed point absorbs it
        assert report.mean_awake_chips == pytest.approx(4.0, abs=0.5)

    def test_scaling_actually_happened_from_the_wrong_size(self):
        """Starting far from the fixed point produces scale transitions."""
        report = self.run_autoscaled(8)
        assert report.autoscale_enabled
        assert report.num_scale_events > 0
        assert report.total_sleep_s > 0.0

    def test_wake_events_pay_the_transition(self):
        """Every wake event carries the fleet's wake latency and energy."""
        model = FixedServiceModel(
            1e-3,
            idle_power_w=1.0,
            sleep_power_w=0.05,
            sleep_entry_latency_s=1e-3,
            wake_latency_s=5e-3,
            wake_energy_j=0.02,
        )
        requests = PoissonArrivals(2800.0, seq_len=128, seed=3).generate(20000)
        scaler = Autoscaler(
            interval_s=0.05, scale_up_queue_depth=64, initial_chips=1
        )
        report = ServingSimulator(
            ChipFleet(model, num_chips=8),
            DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            autoscaler=scaler,
        ).run(requests)
        wakes = [e for e in report.scale_events if e.action == "wake"]
        assert wakes, "cold start from 1 chip must wake chips"
        for event in wakes:
            assert event.transition_s == pytest.approx(5e-3)
            assert event.energy_j == pytest.approx(0.02)
        assert report.wake_energy_j == pytest.approx(0.02 * len(wakes))
