"""Tests for arrival processes and the dynamic batching policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    DynamicBatcher,
    NO_BATCHING,
    PoissonArrivals,
    Request,
    TraceArrivals,
)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(index=0, arrival_s=-1.0, seq_len=128)
        with pytest.raises(ValueError):
            Request(index=0, arrival_s=0.0, seq_len=0)


class TestPoissonArrivals:
    def test_reproducible_and_sorted(self):
        process = PoissonArrivals(rate_rps=100.0, seq_len=128, seed=3)
        a = process.generate(500)
        b = process.generate(500)
        assert a == b
        times = [r.arrival_s for r in a]
        assert times == sorted(times)
        assert [r.index for r in a] == list(range(500))

    def test_mean_rate_close_to_offered(self):
        requests = PoissonArrivals(rate_rps=1000.0, seed=0).generate(20000)
        span = requests[-1].arrival_s - requests[0].arrival_s
        observed = (len(requests) - 1) / span
        assert observed == pytest.approx(1000.0, rel=0.05)

    def test_sequence_length_choices(self):
        requests = PoissonArrivals(rate_rps=10.0, seq_len=(64, 256), seed=1).generate(400)
        lens = {r.seq_len for r in requests}
        assert lens == {64, 256}

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_rps=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate_rps=10.0).generate(0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate_rps=10.0, seq_len=()).generate(5)

    def test_pinned_trace_regression(self):
        # pinned against the pre-vectorization per-request loop: the cumsum
        # fast path must stay bit-identical for a fixed seed
        requests = PoissonArrivals(1000.0, seq_len=[64, 128, 256], seed=12345).generate(6)
        expected = [
            (0, 0.00018413256735377504, 128),
            (1, 0.0008291596367411208, 128),
            (2, 0.005519378329202462, 64),
            (3, 0.005937936995356281, 64),
            (4, 0.006448984439484976, 64),
            (5, 0.00777178869625624, 256),
        ]
        assert [(r.index, r.arrival_s, r.seq_len) for r in requests] == expected

    def test_index_offset_shifts_only_indices(self):
        process = PoissonArrivals(rate_rps=500.0, seq_len=(64, 128), seed=9)
        plain = process.generate(20)
        shifted = process.generate(20, index_offset=100)
        assert [r.index for r in shifted] == list(range(100, 120))
        assert [r.arrival_s for r in shifted] == [r.arrival_s for r in plain]
        assert [r.seq_len for r in shifted] == [r.seq_len for r in plain]
        with pytest.raises(ValueError):
            process.generate(20, index_offset=-1)

    def test_shards_split_rate_and_seeds(self):
        process = PoissonArrivals(rate_rps=1200.0, seq_len=128, seed=4)
        streams = process.shards(3)
        assert [s.rate_rps for s in streams] == [400.0, 400.0, 400.0]
        traces = [tuple(r.arrival_s for r in s.generate(200)) for s in streams]
        assert len(set(traces)) == 3  # spawn children never share draws
        again = [
            tuple(r.arrival_s for r in s.generate(200)) for s in process.shards(3)
        ]
        assert traces == again  # same root seed reproduces the tree
        with pytest.raises(ValueError):
            process.shards(0)

    def test_shards_accept_seed_sequence_root(self):
        root = np.random.SeedSequence(77)
        streams = PoissonArrivals(600.0, seed=root).shards(2)
        assert streams[0].generate(5) != streams[1].generate(5)


class TestTraceArrivals:
    def test_replays_trace(self):
        trace = TraceArrivals([0.0, 0.5, 0.5, 2.0], seq_len=32)
        requests = trace.generate()
        assert [r.arrival_s for r in requests] == [0.0, 0.5, 0.5, 2.0]
        assert all(r.seq_len == 32 for r in requests)

    def test_truncation(self):
        trace = TraceArrivals([0.0, 1.0, 2.0])
        assert len(trace.generate(2)) == 2

    def test_per_request_lens(self):
        trace = TraceArrivals([0.0, 1.0], per_request_lens=[64, 256])
        assert [r.seq_len for r in trace.generate()] == [64, 256]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 0.5])
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 1.0], per_request_lens=[128])


class TestDynamicBatcher:
    def test_full_batch_releases(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=10.0)
        assert not batcher.ready(3, 0.0)
        assert batcher.ready(4, 0.0)
        assert batcher.ready(9, 0.0)

    def test_timeout_releases_partial_batch(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=1.0)
        assert not batcher.ready(2, 0.5)
        assert batcher.ready(2, 1.0)

    def test_empty_queue_never_ready(self):
        assert not DynamicBatcher(1, 0.0).ready(0, 100.0)

    def test_batch_of_caps_at_max(self):
        batcher = DynamicBatcher(max_batch_size=4)
        assert batcher.batch_of(2) == 2
        assert batcher.batch_of(9) == 4

    def test_no_batching_is_greedy_singles(self):
        assert NO_BATCHING.max_batch_size == 1
        assert NO_BATCHING.ready(1, 0.0)
        assert NO_BATCHING.batch_of(5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=1, max_wait_s=-1.0)
