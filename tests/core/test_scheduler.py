"""Unit tests for the event-driven pipeline executor and attention executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MatMulEngineConfig, PipelineConfig, SoftmaxEngineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine
from repro.core.pipeline import StageTiming
from repro.core.scheduler import (
    AttentionExecutor,
    ExecutedSchedule,
    PipelineExecutor,
    StageJitter,
)
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.functional import softmax as exact_softmax


def timing(score=100e-9, softmax=150e-9, context=100e-9, rows=64) -> StageTiming:
    return StageTiming(
        score_row_s=score, softmax_row_s=softmax, context_row_s=context, num_rows=rows
    )


class TestPipelineExecutor:
    def test_single_row(self):
        config = PipelineConfig(stage_handoff_s=2e-9)
        schedule = PipelineExecutor(config).execute_vector(timing(rows=1))
        assert schedule.num_rows == 1
        assert schedule.total_latency_s == pytest.approx(350e-9 + 2 * 2e-9)
        record = schedule.records[0]
        assert record.score_start_s == 0.0
        assert record.softmax_start_s == pytest.approx(102e-9)
        assert record.completion_s == pytest.approx(schedule.total_latency_s)

    def test_rows_flow_in_order_on_single_servers(self):
        schedule = PipelineExecutor(PipelineConfig(stage_handoff_s=0.0)).execute_vector(
            timing(rows=16)
        )
        starts = [r.softmax_start_s for r in schedule.records]
        assert starts == sorted(starts)

    def test_execute_uses_configured_granularity(self):
        t = timing()
        vector = PipelineExecutor(PipelineConfig(granularity="vector")).execute(t)
        operand = PipelineExecutor(PipelineConfig(granularity="operand")).execute(t)
        assert vector.granularity == "vector"
        assert operand.granularity == "operand"
        assert vector.total_latency_s < operand.total_latency_s

    def test_executed_speedup_positive(self):
        assert PipelineExecutor().speedup(timing()) > 1.0

    def test_executed_speedup_of_free_pipeline_is_parity(self):
        executor = PipelineExecutor(PipelineConfig(stage_handoff_s=0.0))
        assert executor.speedup(timing(0.0, 0.0, 0.0, rows=4)) == 1.0

    def test_more_engines_reduce_latency_when_softmax_bound(self):
        t = timing(softmax=500e-9, rows=128)
        one = PipelineExecutor(softmax_engines=1).execute_vector(t)
        four = PipelineExecutor(softmax_engines=4).execute_vector(t)
        assert four.total_latency_s < one.total_latency_s
        assert sum(four.engine_rows) == 128
        assert all(count > 0 for count in four.engine_rows)

    def test_streams_parallelise_the_gemm_stages(self):
        t = timing(score=500e-9, softmax=10e-9, rows=128)
        one = PipelineExecutor(streams=1).execute_vector(t)
        four = PipelineExecutor(streams=4, softmax_engines=1).execute_vector(t)
        assert four.total_latency_s < one.total_latency_s

    def test_faster_engine_serves_more_rows(self):
        t = timing(softmax=400e-9, rows=120)
        schedule = PipelineExecutor(
            softmax_engines=2, softmax_speedups=(1.0, 3.0)
        ).execute_vector(t)
        assert schedule.engine_rows[1] > schedule.engine_rows[0]
        assert sum(schedule.engine_rows) == 120

    def test_jitter_is_deterministic_per_seed(self):
        t = timing(rows=32)
        a = PipelineExecutor(jitter=StageJitter(sigma=0.2, seed=5)).execute_vector(t)
        b = PipelineExecutor(jitter=StageJitter(sigma=0.2, seed=5)).execute_vector(t)
        c = PipelineExecutor(jitter=StageJitter(sigma=0.2, seed=6)).execute_vector(t)
        assert a.total_latency_s == b.total_latency_s
        assert a.total_latency_s != c.total_latency_s

    def test_zero_jitter_matches_no_jitter(self):
        t = timing(rows=32)
        jittered = PipelineExecutor(jitter=StageJitter(sigma=0.0, seed=9)).execute_vector(t)
        plain = PipelineExecutor().execute_vector(t)
        assert jittered.total_latency_s == plain.total_latency_s

    def test_queue_peak_counts_softmax_backlog(self):
        # score is much faster than the lone softmax engine: finished score
        # rows pile up in the softmax queue
        t = timing(score=10e-9, softmax=500e-9, rows=64)
        schedule = PipelineExecutor(PipelineConfig(stage_handoff_s=0.0)).execute_vector(t)
        assert schedule.queue_peaks["softmax"] > 32

    def test_utilization_bounds_and_unknown_stage(self):
        schedule = PipelineExecutor().execute_vector(timing())
        for stage in ("score", "softmax", "context"):
            assert 0.0 < schedule.utilization(stage) <= 1.0
        with pytest.raises(ValueError):
            schedule.utilization("divider")

    def test_as_pipeline_schedule_round_trip(self):
        schedule = PipelineExecutor().execute_vector(timing())
        analytical_view = schedule.as_pipeline_schedule()
        assert analytical_view.granularity == "vector"
        assert analytical_view.total_latency_s == schedule.total_latency_s

    def test_service_time_entry_point_with_explicit_streams(self):
        executor = PipelineExecutor(streams=2)
        n = 8
        schedule = executor.execute_service_times(
            np.full(n, 100e-9),
            np.full(n, 100e-9),
            np.full(n, 100e-9),
            stream_of=np.array([0, 0, 0, 0, 1, 1, 1, 1]),
        )
        assert isinstance(schedule, ExecutedSchedule)
        assert {r.stream for r in schedule.records} == {0, 1}

    def test_invalid_inputs_rejected(self):
        executor = PipelineExecutor(streams=2)
        with pytest.raises(ValueError):
            executor.execute_service_times(np.array([]), np.array([]), np.array([]))
        with pytest.raises(ValueError):
            executor.execute_service_times(
                np.ones(3), np.ones(2), np.ones(3)
            )
        with pytest.raises(ValueError):
            executor.execute_service_times(
                np.ones(2), np.ones(2), np.ones(2), stream_of=np.array([0, 5])
            )
        with pytest.raises(ValueError):
            executor.execute_service_times(
                -np.ones(2), np.ones(2), np.ones(2)
            )
        with pytest.raises(ValueError):
            PipelineExecutor(streams=0)
        with pytest.raises(ValueError):
            PipelineExecutor(softmax_engines=2, softmax_speedups=(1.0,))
        with pytest.raises(ValueError):
            PipelineExecutor(softmax_engines=1, softmax_speedups=(0.0,)).execute_vector(
                timing(rows=1)
            )


class TestAttentionExecutor:
    def executor(self, num_engines=2) -> AttentionExecutor:
        engine = MatMulEngine(
            MatMulEngineConfig(
                crossbar_rows=16, crossbar_cols=16, adc_bits=10, bits_per_cell=5, num_tiles=8
            )
        )
        pool = [RRAMSoftmaxEngine(SoftmaxEngineConfig()) for _ in range(num_engines)]
        return AttentionExecutor(engine, pool)

    def test_functional_output_matches_exact_attention(self, rng):
        executor = self.executor()
        shape = (1, 2, 8, 16)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        result = executor.run(q, k, v)
        exact = exact_softmax(q @ np.swapaxes(k, -1, -2) / np.sqrt(16)) @ v
        correlation = np.corrcoef(result.context.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.98
        assert result.schedule.num_rows == 16
        assert executor.last_schedule is result.schedule

    def test_measured_times_match_ledger_derivations(self, rng):
        executor = self.executor(num_engines=1)
        shape = (1, 1, 4, 16)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        result = executor.run(q, k, v)
        seq_len = 4
        softmax_engine = executor.softmax_pool[0]
        expected_softmax = softmax_engine.row_latency_s(seq_len)
        for record in result.schedule.records:
            assert record.softmax_end_s - record.softmax_start_s == pytest.approx(
                expected_softmax
            )
        expected_score = executor.matmul_engine.row_latency_s(GEMMShape(1, 16, seq_len))
        record = result.schedule.records[0]
        assert record.score_end_s - record.score_start_s == pytest.approx(expected_score)

    def test_mask_is_applied_before_softmax(self, rng):
        executor = self.executor()
        shape = (1, 2, 6, 16)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        mask = np.zeros((1, 1, 6, 6))
        mask[..., 3:] = -1e9  # hide the last three keys
        result = executor.run(q, k, v, mask=mask)
        assert np.all(result.weights[..., 3:] < 1e-6)

    def test_row_by_row_matches_batched_engine_softmax(self, rng):
        """Streaming rows one by one equals the batched engine on the block."""
        executor = self.executor(num_engines=3)
        shape = (1, 1, 6, 16)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        result = executor.run(q, k, v)
        reference = RRAMSoftmaxEngine(SoftmaxEngineConfig())
        np.testing.assert_array_equal(
            result.weights[0, 0], reference.softmax(result.scores[0, 0])
        )

    def test_shape_validation(self, rng):
        executor = self.executor()
        with pytest.raises(ValueError):
            executor.run(
                rng.normal(size=(2, 8, 16)),
                rng.normal(size=(2, 8, 16)),
                rng.normal(size=(2, 8, 16)),
            )
        with pytest.raises(ValueError):
            executor.run(
                rng.normal(size=(1, 2, 8, 16)),
                rng.normal(size=(1, 2, 4, 16)),
                rng.normal(size=(1, 2, 8, 16)),
            )


    def test_jitter_perturbs_functional_schedules(self, rng):
        from repro.core.scheduler import StageJitter

        shape = (1, 1, 6, 16)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        plain = self.executor().run(q, k, v).schedule
        jittered_executor = self.executor()
        jittered_executor.jitter = StageJitter(sigma=0.5, seed=11)
        jittered = jittered_executor.run(q, k, v).schedule
        assert jittered.total_latency_s != plain.total_latency_s

    def test_pool_construction_from_int(self):
        executor = AttentionExecutor(softmax_engines=3)
        assert len(executor.softmax_pool) == 3
        with pytest.raises(ValueError):
            AttentionExecutor(softmax_engines=0)
        with pytest.raises(ValueError):
            AttentionExecutor(softmax_engines=[])
