"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 editable-wheel support
(all project metadata lives in ``pyproject.toml``).
"""

from setuptools import setup

setup()
