"""SLO control-plane benchmark and the EDF-vs-FIFO attainment gates.

The control-plane event loop (closed-loop clients, EDF heap, autoscaler
ticks) must stay cheap enough for the e12 sweeps: tens of thousands of
closed-loop requests have to simulate in well under a second.  The
attainment gates pin the experiment's headline: on the e12 skew sweep's
bursty two-class traffic, EDF keeps attainment at or above 95% where
FIFO has already fallen below 80%.
"""

from __future__ import annotations

import pytest

from repro.analysis.serving import SLOServingAnalyzer
from repro.serving import (
    ChipFleet,
    ClosedLoopClients,
    ExponentialServiceModel,
    MachineRepairQueue,
    NO_BATCHING,
    ServingSimulator,
)

from conftest import record


@pytest.mark.smoke
def test_bench_closed_loop_throughput(benchmark):
    """30k closed-loop requests stay sub-second and on the M/M/1//N line."""
    num_clients, think_s, service_s = 8, 0.010, 0.001
    clients = ClosedLoopClients(num_clients=num_clients, think_s=think_s, seed=7)
    model = ExponentialServiceModel(mean_s=service_s, seed=8)
    simulator = ServingSimulator(ChipFleet(model, num_chips=1), NO_BATCHING)

    def run():
        model.reset()
        return simulator.run_closed_loop(clients, 30000)

    report = benchmark(run)

    theory = MachineRepairQueue(
        num_clients=num_clients, think_s=think_s, service_s=service_s
    )
    deviation = (
        abs(report.throughput_rps - theory.throughput_rps) / theory.throughput_rps
    )
    record(
        benchmark,
        requests_per_wall_second=round(30000 / benchmark.stats["mean"]),
        simulated_throughput_rps=round(report.throughput_rps, 1),
        machine_repair_deviation_pct=round(deviation * 100, 2),
    )
    assert report.num_requests == 30000
    assert deviation < 0.05
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.smoke
def test_bench_edf_attainment_gate(benchmark):
    """EDF holds >= 95% attainment where FIFO is already below 80%."""
    analyzer = SLOServingAnalyzer()

    row = benchmark.pedantic(analyzer.row_for, args=(0.8,), rounds=1, iterations=1)

    record(
        benchmark,
        fifo_attainment=round(row.fifo_attainment, 3),
        edf_attainment=round(row.edf_attainment, 3),
        fifo_interactive=round(row.fifo_report.deadline_attainment(0), 3),
        edf_interactive=round(row.edf_report.deadline_attainment(0), 3),
    )
    # identical tagged traffic in both arms: the gap is pure dispatch order
    assert row.fifo_report.num_requests == row.edf_report.num_requests
    assert row.fifo_attainment < 0.80
    assert row.edf_attainment >= 0.95
