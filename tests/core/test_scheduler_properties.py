"""Property tests for the event-driven scheduler's invariants.

Randomised :class:`~repro.core.pipeline.StageTiming` draws (including
zero-cost stages), pool sizes, handoffs and jitter — the invariants hold for
every schedule the executor can produce:

* causality — no row enters softmax before its score row has finished and
  been forwarded, nor the context GEMM before its softmax row;
* conservation — every row flows through all three stages exactly once;
* exclusivity — a softmax engine never serves two rows at once;
* steady state — with one server per stage and no jitter, the measured
  steady-state completion interval equals the bottleneck stage (+ handoff).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PipelineConfig
from repro.core.pipeline import StageTiming
from repro.core.scheduler import PipelineExecutor, StageJitter

_EPS = 1e-15  # float-accumulation slack on simulated timestamps

stage_latencies = st.one_of(
    st.just(0.0),  # zero-cost stages are legal ablation points
    st.floats(min_value=1e-9, max_value=1e-6, allow_nan=False, allow_infinity=False),
)

timings = st.builds(
    StageTiming,
    score_row_s=stage_latencies,
    softmax_row_s=stage_latencies,
    context_row_s=stage_latencies,
    num_rows=st.integers(min_value=1, max_value=160),
)

executors = st.builds(
    PipelineExecutor,
    st.builds(
        PipelineConfig,
        granularity=st.just("vector"),
        stage_handoff_s=st.sampled_from([0.0, 2e-9, 25e-9]),
    ),
    streams=st.integers(min_value=1, max_value=6),
    softmax_engines=st.integers(min_value=1, max_value=6),
    jitter=st.one_of(
        st.none(),
        st.builds(
            StageJitter,
            sigma=st.floats(min_value=0.0, max_value=0.5),
            seed=st.integers(min_value=0, max_value=2**16),
        ),
    ),
)


@settings(max_examples=60, deadline=None)
@given(timing=timings, executor=executors)
def test_causality_no_stage_runs_ahead_of_its_input(timing, executor):
    handoff = executor.config.stage_handoff_s
    schedule = executor.execute_vector(timing)
    for record in schedule.records:
        assert record.score_end_s >= record.score_start_s
        assert record.softmax_start_s >= record.score_end_s + handoff - _EPS
        assert record.softmax_end_s >= record.softmax_start_s
        assert record.context_start_s >= record.softmax_end_s + handoff - _EPS
        assert record.context_end_s >= record.context_start_s


@settings(max_examples=60, deadline=None)
@given(timing=timings, executor=executors)
def test_rows_are_conserved(timing, executor):
    schedule = executor.execute_vector(timing)
    assert schedule.num_rows == timing.num_rows
    assert sorted(record.row for record in schedule.records) == list(range(timing.num_rows))
    assert sum(schedule.engine_rows) == timing.num_rows
    assert np.isfinite(schedule.total_latency_s)
    assert schedule.total_latency_s == max(r.completion_s for r in schedule.records)


@settings(max_examples=60, deadline=None)
@given(timing=timings, executor=executors)
def test_softmax_engines_never_overlap(timing, executor):
    handoff = executor.config.stage_handoff_s
    schedule = executor.execute_vector(timing)
    by_engine: dict[int, list] = {}
    for record in schedule.records:
        by_engine.setdefault(record.engine, []).append(record)
    for records in by_engine.values():
        records.sort(key=lambda r: r.softmax_start_s)
        for earlier, later in zip(records, records[1:]):
            # the engine is busy through service + forward
            assert later.softmax_start_s >= earlier.softmax_end_s + handoff - _EPS


@settings(max_examples=60, deadline=None)
@given(timing=timings, executor=executors)
def test_streams_process_their_rows_in_order(timing, executor):
    schedule = executor.execute_vector(timing)
    by_stream: dict[int, list] = {}
    for record in sorted(schedule.records, key=lambda r: r.row):
        by_stream.setdefault(record.stream, []).append(record)
    for records in by_stream.values():
        starts = [r.score_start_s for r in records]
        assert starts == sorted(starts)


@settings(max_examples=60, deadline=None)
@given(timing=timings, executor=executors)
def test_vector_schedule_beats_operand_up_to_forwarding_cost(timing, executor):
    # pipelining can only lose by the extra per-row forwards it performs:
    # the operand schedule forwards each operand twice in total, the vector
    # schedule forwards every row at every stage.  (With near-zero stage
    # compute the forwards dominate and operand-grained genuinely wins —
    # the analytical formulas predict the same crossover.)
    vector = executor.execute_vector(timing)
    operand = executor.execute_operand(timing)
    forwarding_slack = (timing.num_rows - 1) * executor.config.stage_handoff_s
    packing_slack = 0.0
    if executor.jitter is not None:
        # with jittered (heterogeneous) service times the two schedules are
        # different list schedules of the same tasks: the operand barrier
        # dispatches each stage's rows to the least-loaded server while the
        # vector pipeline dispatches in arrival order, so the operand
        # packing can win by up to one maximal task per stage (the standard
        # list-scheduling bound), on top of the forwarding difference
        score_s, softmax_s, context_s = executor._service_times(timing)
        packing_slack = score_s.max() + softmax_s.max() + context_s.max()
    assert (
        vector.total_latency_s
        <= operand.total_latency_s + forwarding_slack + packing_slack + _EPS
    )


@settings(max_examples=60, deadline=None)
@given(
    timing=timings,
    handoff=st.sampled_from([0.0, 2e-9, 25e-9]),
)
def test_steady_state_interval_equals_bottleneck(timing, handoff):
    # single server per stage, no jitter: after the pipeline fills, rows
    # complete exactly one bottleneck interval (+ forward) apart
    executor = PipelineExecutor(PipelineConfig(stage_handoff_s=handoff))
    schedule = executor.execute_vector(timing)
    expected = timing.bottleneck_row_s + handoff
    if timing.num_rows >= 8:
        np.testing.assert_allclose(
            schedule.steady_state_interval_s, expected, rtol=1e-9, atol=1e-18
        )
        completions = sorted(r.completion_s for r in schedule.records)
        gaps = np.diff(completions)
        np.testing.assert_allclose(gaps, expected, rtol=1e-6, atol=1e-15)


@settings(max_examples=40, deadline=None)
@given(timing=timings, executor=executors, factor=st.integers(min_value=2, max_value=5))
def test_uniformly_slower_stages_never_speed_things_up(timing, executor, factor):
    slower = StageTiming(
        score_row_s=timing.score_row_s * factor,
        softmax_row_s=timing.softmax_row_s * factor,
        context_row_s=timing.context_row_s * factor,
        num_rows=timing.num_rows,
    )
    base = executor.execute_vector(timing)
    scaled = executor.execute_vector(slower)
    assert scaled.total_latency_s >= base.total_latency_s - _EPS
