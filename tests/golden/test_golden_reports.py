"""Golden regression tests for the experiment-runner reports.

Each deterministic experiment report (E4 bit-widths, E7 pipeline
ablation, E8 precision sweep, E9 noise corners, E10 serving, E11
fault-injected serving, E12 SLO control plane, E13 tiered-fidelity
serving, E14 topology-aware routing) is compared line-for-line against a
committed golden file.
E10's golden doubles as the healthy-path bit-identity guard: neither the
fault machinery, the SLO/autoscale control plane, nor the
fidelity-tiering layer may move a single character of the open-loop FIFO
no-autoscaler serving report (see also ``test_tier_identity.py`` for the
explicit ``sample_fraction=0`` guard).  The reports are fully
deterministic (seeded generators, ideal devices or seeded noise), so any
diff is a behaviour change — either a regression to investigate or an
intentional improvement to re-bless:

    PYTHONPATH=src python -m pytest tests/golden --update-goldens

rewrites the golden files from the current code; commit the diff together
with the change that caused it.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.experiments import run_experiment

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_EXPERIMENTS = ("e4", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14")


def golden_path(experiment_id: str) -> Path:
    return GOLDEN_DIR / f"{experiment_id}.json"


@pytest.mark.parametrize("experiment_id", GOLDEN_EXPERIMENTS)
def test_report_matches_golden(experiment_id, update_goldens):
    report = run_experiment(experiment_id)
    path = golden_path(experiment_id)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"experiment": experiment_id, "report": report.splitlines()},
                       indent=2)
            + "\n"
        )
        return
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "`python -m pytest tests/golden --update-goldens`"
    )
    golden = json.loads(path.read_text())
    expected = golden["report"]
    actual = report.splitlines()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(expected, actual, "golden", "current", lineterm="")
        )
        pytest.fail(
            f"{experiment_id} report diverged from its golden file "
            f"(re-bless with --update-goldens if intentional):\n{diff}"
        )


def test_goldens_directory_has_no_strays():
    """Every committed golden corresponds to a checked experiment."""
    names = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert names == set(GOLDEN_EXPERIMENTS)
