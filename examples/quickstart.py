"""Quickstart: simulate STAR's RRAM softmax engine on a row of attention scores.

Run with:  python examples/quickstart.py

The script builds the 8-bit (CNEWS) softmax engine exactly as Section II of
the paper describes — CAM/SUB crossbar, CAM+LUT exponential unit, counters,
VMM crossbar and divider — pushes one row of attention scores through it,
compares the result against the exact floating-point softmax, and prints the
engine's area / power / latency figures used in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.core import RRAMSoftmaxEngine, SoftmaxEngineConfig
from repro.nn import softmax as exact_softmax
from repro.utils import CNEWS_FORMAT, format_si
from repro.workloads import AttentionScoreGenerator, CNEWS_PROFILE


def main() -> None:
    # 1. build the engine with the paper's 8-bit CNEWS format (6 int + 2 frac)
    engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    print(f"Softmax engine configured for format {engine.fmt} "
          f"({engine.fmt.total_bits}-bit, resolution {engine.fmt.resolution})")

    # 2. generate one row of synthetic CNEWS-like attention scores
    generator = AttentionScoreGenerator(CNEWS_PROFILE, seed=0)
    scores = generator.rows(1, 128)[0]
    print(f"\nInput scores: {scores.size} values in [{scores.min():.2f}, {scores.max():.2f}]")

    # 3. run the crossbar-level simulation and inspect the intermediates
    trace = engine.softmax_row_trace(scores)
    print(f"x_max found by the CAM search          : {trace.max_value:+.2f} (row {np.argmax(trace.quantized_scores == trace.max_value)})")
    print(f"denominator from the VMM crossbar      : {trace.denominator:.4f}")
    print(f"largest probability                    : {trace.probabilities.max():.4f}")

    # 4. compare with the exact softmax
    exact = exact_softmax(scores)
    error = np.abs(trace.probabilities - exact)
    print("\nFidelity vs exact floating-point softmax")
    print(f"  max  |error| : {error.max():.5f}")
    print(f"  mean |error| : {error.mean():.6f}")
    print(f"  top-1 match  : {np.argmax(trace.probabilities) == np.argmax(exact)}")

    # 5. the hardware cost figures behind Table I
    print("\nEngine cost model (Table I inputs)")
    print(f"  area    : {engine.area_um2():.0f} um^2 ({engine.area_mm2():.4f} mm^2)")
    print(f"  power   : {format_si(engine.power_w(128), 'W')}")
    print(f"  row latency ({scores.size} elements): {format_si(engine.row_latency_s(128), 's')}")
    print(f"  row energy                     : {format_si(engine.row_energy_j(128), 'J')}")

    print("\nPer-component breakdown for one row:")
    print(engine.row_ledger(128).format_table())


if __name__ == "__main__":
    main()
