"""Tests for the MatMul engine, pipeline models and the STAR accelerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.config import MatMulEngineConfig, PipelineConfig, STARConfig, SoftmaxEngineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine, ProgrammedOperand
from repro.core.pipeline import AttentionPipeline, StageTiming, attention_streams
from repro.nn.bert import BertWorkload
from repro.utils.fixed_point import MRPC_FORMAT


class TestGEMMShape:
    def test_operations(self):
        assert GEMMShape(4, 8, 16).operations == 2 * 4 * 8 * 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            GEMMShape(0, 1, 1)


class TestMatMulEngine:
    def small_engine(self, num_tiles=4):
        # 5 bits/cell keeps weight-quantisation error small enough to verify
        # the analog GEMM path functionally
        return MatMulEngine(
            MatMulEngineConfig(
                crossbar_rows=16,
                crossbar_cols=16,
                adc_bits=10,
                num_tiles=num_tiles,
                bits_per_cell=5,
            )
        )

    def test_functional_matvec_tile(self, rng):
        engine = self.small_engine()
        matrix = rng.normal(size=(16, 16))
        vector = rng.uniform(0, 1, size=16)
        result = engine.matvec_tile(matrix, vector)
        expected = vector @ matrix
        assert np.max(np.abs(result - expected)) / np.max(np.abs(expected)) < 0.35

    def test_functional_matmul_matches_numpy_shape_and_scale(self, rng):
        engine = self.small_engine()
        a = rng.normal(size=(4, 16))
        b = rng.normal(size=(16, 16))
        approx = engine.matmul(a, b)
        exact = a @ b
        assert approx.shape == exact.shape
        correlation = np.corrcoef(approx.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.95

    def test_matmul_rejects_bad_shapes(self, rng):
        engine = self.small_engine()
        with pytest.raises(ValueError):
            engine.matmul(rng.normal(size=(2, 3)), rng.normal(size=(4, 2)))

    def test_gemm_tile_vmms_and_latency(self):
        engine = MatMulEngine(MatMulEngineConfig(num_tiles=96))
        shape = GEMMShape(m=128, k=768, n=768)
        # 6 x 6 tiles of 128x128, one VMM per input row per tile
        assert engine.gemm_tile_vmms(shape) == 6 * 6 * 128
        assert engine.gemm_latency_s(shape) > 0
        assert engine.gemm_energy_j(shape) == pytest.approx(
            engine.gemm_tile_vmms(shape) * engine.tile_vmm_energy_j()
        )

    def test_duplication_speeds_up_small_gemms(self):
        dup = MatMulEngine(MatMulEngineConfig(num_tiles=96, allow_duplication=True))
        no_dup = MatMulEngine(MatMulEngineConfig(num_tiles=96, allow_duplication=False))
        shape = GEMMShape(m=128, k=128, n=128)
        assert dup.gemm_latency_s(shape) < no_dup.gemm_latency_s(shape)

    def test_more_tiles_never_slower(self):
        few = MatMulEngine(MatMulEngineConfig(num_tiles=8))
        many = MatMulEngine(MatMulEngineConfig(num_tiles=64))
        shape = GEMMShape(m=64, k=768, n=768)
        assert many.gemm_latency_s(shape) <= few.gemm_latency_s(shape)

    def test_row_latency_single_wave(self):
        engine = MatMulEngine(MatMulEngineConfig(num_tiles=96))
        shape = GEMMShape(m=1, k=64, n=128)
        assert engine.row_latency_s(shape) == pytest.approx(engine.tile_vmm_latency_s())

    def test_engine_level_costs(self):
        engine = MatMulEngine(MatMulEngineConfig(num_tiles=96))
        assert engine.area_mm2() > 0
        assert engine.peak_power_w() == pytest.approx(96 * engine.tile_power_w())
        assert engine.peak_throughput_ops() > 0
        assert engine.tile_ops() == 2 * 128 * 128

    def test_programming_costs(self):
        engine = MatMulEngine()
        shape = GEMMShape(m=1, k=128, n=128)
        assert engine.programming_energy_j(shape) > 0
        assert engine.programming_latency_s(shape) > 0


class TestTileBank:
    """The persistent-operand (weight-stationary) functional path."""

    def small_engine(self):
        return MatMulEngine(
            MatMulEngineConfig(
                crossbar_rows=16,
                crossbar_cols=16,
                adc_bits=10,
                num_tiles=4,
                bits_per_cell=5,
            )
        )

    def test_program_once_reuse_many(self, rng):
        engine = self.small_engine()
        b = rng.normal(size=(24, 20))  # ragged: 2x2 tile grid with padding
        operand = engine.program_operand(b)
        assert operand.shape == (24, 20)
        assert operand.num_tiles == 4
        pulses_after_programming = engine.access_stats.programming_pulses
        assert pulses_after_programming == 4 * 2 * 16 * 16  # differential pairs

        a = rng.normal(size=(6, 24))
        first = engine.matmul(a, operand)
        second = engine.matmul(a, operand)
        # reuse re-programs nothing and (with ideal devices) is deterministic
        assert engine.access_stats.programming_pulses == pulses_after_programming
        np.testing.assert_array_equal(first, second)

    def test_matmul_accepts_raw_matrix_and_programs_fresh_bank(self, rng):
        engine = self.small_engine()
        a = rng.normal(size=(4, 16))
        b = rng.normal(size=(16, 16))
        out = engine.matmul(a, b)
        assert out.shape == (4, 16)
        assert engine.access_stats.programming_pulses == 2 * 16 * 16
        engine.matmul(a, b)
        assert engine.access_stats.programming_pulses == 2 * 2 * 16 * 16

    def test_programmed_operand_matches_dynamic_path(self, rng):
        engine_static = self.small_engine()
        engine_dynamic = self.small_engine()
        a = rng.normal(size=(5, 24))
        b = rng.normal(size=(24, 20))
        operand = engine_static.program_operand(b)
        np.testing.assert_array_equal(
            engine_static.matmul(a, operand), engine_dynamic.matmul(a, b)
        )

    def test_accuracy_against_exact(self, rng):
        engine = self.small_engine()
        a = rng.normal(size=(8, 24))
        b = rng.normal(size=(24, 20))
        approx = engine.matmul(a, engine.program_operand(b))
        exact = a @ b
        correlation = np.corrcoef(approx.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.95

    def test_read_stats_accumulate_per_matmul(self, rng):
        engine = self.small_engine()
        operand = engine.program_operand(rng.normal(size=(16, 16)))
        assert engine.access_stats.vmm_ops == 0
        engine.matmul(rng.normal(size=(3, 16)), operand)
        assert engine.access_stats.vmm_ops == 3  # one VMM per activation row per tile
        engine.matmul(rng.normal(size=(2, 16)), operand)
        assert engine.access_stats.vmm_ops == 5

    def test_matvec_tile_records_into_engine_stats(self, rng):
        engine = self.small_engine()
        engine.matvec_tile(rng.normal(size=(16, 16)), rng.uniform(0, 1, size=16))
        assert engine.access_stats.vmm_ops == 1
        assert engine.access_stats.programming_pulses == 2 * 16 * 16

    def test_stats_derived_energy_and_latency(self, rng):
        engine = self.small_engine()
        operand = engine.program_operand(rng.normal(size=(16, 16)))
        engine.matmul(rng.normal(size=(4, 16)), operand)
        stats = engine.access_stats
        assert engine.energy_j_of(stats) > 0
        assert engine.latency_s_of(stats) > 0
        # programming dominates the energy of a single small GEMM
        read_only = type(stats)(
            vmm_ops=stats.vmm_ops,
            array_activations=stats.array_activations,
            cell_reads=stats.cell_reads,
            adc_conversions=stats.adc_conversions,
            dac_conversions=stats.dac_conversions,
        )
        assert engine.energy_j_of(stats) > engine.energy_j_of(read_only)

    def test_matmul_rejects_mismatched_operand(self, rng):
        engine = self.small_engine()
        operand = engine.program_operand(rng.normal(size=(16, 16)))
        with pytest.raises(ValueError):
            engine.matmul(rng.normal(size=(3, 24)), operand)

    def test_failed_matmul_charges_no_programming(self, rng):
        engine = self.small_engine()
        with pytest.raises(ValueError):
            engine.matmul(rng.normal(size=(3, 24)), rng.normal(size=(16, 16)))
        assert engine.access_stats.programming_pulses == 0

    def test_one_dimensional_operand_rejected(self, rng):
        engine = self.small_engine()
        with pytest.raises(ValueError):
            engine.matmul(rng.normal(size=(3, 16)), rng.normal(size=16))
        with pytest.raises(ValueError):
            engine.program_operand(rng.normal(size=16))

    def test_operand_is_engine_agnostic_container(self, rng):
        operand = self.small_engine().program_operand(rng.normal(size=(16, 16)))
        assert isinstance(operand, ProgrammedOperand)
        assert operand.tiles[0].crossbar.is_programmed


class TestPipeline:
    def timing(self, score=100e-9, softmax=150e-9, context=100e-9, rows=64):
        return StageTiming(
            score_row_s=score, softmax_row_s=softmax, context_row_s=context, num_rows=rows
        )

    def test_vector_faster_than_operand(self):
        pipeline = AttentionPipeline()
        timing = self.timing()
        assert pipeline.speedup(timing) > 1.0

    def test_vector_latency_approaches_bottleneck_rate(self):
        pipeline = AttentionPipeline(PipelineConfig(stage_handoff_s=0.0))
        timing = self.timing(rows=10000)
        schedule = pipeline.vector_grained_latency(timing)
        per_row = schedule.total_latency_s / timing.num_rows
        assert per_row == pytest.approx(timing.bottleneck_row_s, rel=0.01)

    def test_operand_latency_is_sum_of_stage_totals(self):
        pipeline = AttentionPipeline(PipelineConfig(stage_handoff_s=0.0))
        timing = self.timing()
        expected = timing.num_rows * timing.sum_row_s
        assert pipeline.operand_grained_latency(timing).total_latency_s == pytest.approx(expected)

    def test_speedup_bounded_by_three(self):
        pipeline = AttentionPipeline(PipelineConfig(stage_handoff_s=0.0))
        balanced = self.timing(100e-9, 100e-9, 100e-9, rows=10000)
        assert pipeline.speedup(balanced) == pytest.approx(3.0, rel=0.01)
        skewed = self.timing(10e-9, 500e-9, 10e-9, rows=10000)
        assert pipeline.speedup(skewed) < 1.2

    def test_configured_granularity_selects_schedule(self):
        timing = self.timing()
        vector = AttentionPipeline(PipelineConfig(granularity="vector")).latency(timing)
        operand = AttentionPipeline(PipelineConfig(granularity="operand")).latency(timing)
        assert vector.granularity == "vector"
        assert operand.granularity == "operand"
        assert vector.total_latency_s < operand.total_latency_s

    def test_attention_streams(self):
        assert attention_streams(12, 1, 96) == 12
        assert attention_streams(12, 1, 8) == 4
        assert attention_streams(12, 4, 96) == 48
        with pytest.raises(ValueError):
            attention_streams(0, 1, 96)

    def test_invalid_timing_and_config(self):
        with pytest.raises(ValueError):
            StageTiming(score_row_s=-1e-9, softmax_row_s=1, context_row_s=1, num_rows=1)
        with pytest.raises(ValueError):
            StageTiming(score_row_s=1, softmax_row_s=1, context_row_s=1, num_rows=0)
        with pytest.raises(ValueError):
            PipelineConfig(granularity="weird")

    def test_zero_latency_stage_is_a_valid_ablation_point(self):
        # regression: zero-cost stages (e.g. "softmax for free") used to be
        # rejected, blocking the ablation that isolates each stage's cost
        free_softmax = StageTiming(
            score_row_s=100e-9, softmax_row_s=0.0, context_row_s=100e-9, num_rows=64
        )
        pipeline = AttentionPipeline(PipelineConfig(stage_handoff_s=0.0))
        schedule = pipeline.vector_grained_latency(free_softmax)
        assert schedule.total_latency_s == pytest.approx(
            free_softmax.sum_row_s + 63 * free_softmax.bottleneck_row_s
        )
        assert free_softmax.bottleneck_row_s == 100e-9
        all_free = StageTiming(0.0, 0.0, 0.0, num_rows=4)
        assert pipeline.vector_grained_latency(all_free).total_latency_s == 0.0
        assert pipeline.operand_grained_latency(all_free).total_latency_s == 0.0
        # an entirely free pipeline is neither sped up nor slowed down
        assert pipeline.speedup(all_free) == 1.0


class TestSTARAccelerator:
    def test_cost_report_matches_paper_scale(self):
        star = STARAccelerator()
        report = star.cost_report(BertWorkload(seq_len=128))
        # paper: 612.66 GOPs/s/W; the model should land in the same regime
        assert 450 < report.computing_efficiency_gops_per_watt < 800
        assert report.power_w < 30
        assert report.area_mm2 < 100

    def test_vector_pipeline_beats_operand_pipeline(self):
        workload = BertWorkload(seq_len=128)
        vector = STARAccelerator()
        operand = STARAccelerator(
            STARConfig(pipeline=PipelineConfig(granularity="operand"))
        )
        assert vector.inference_latency_s(workload) < operand.inference_latency_s(workload)

    def test_latency_grows_with_sequence_length(self):
        star = STARAccelerator()
        assert star.inference_latency_s(BertWorkload(seq_len=256)) > star.inference_latency_s(
            BertWorkload(seq_len=128)
        )

    def test_layer_breakdown_components_positive(self):
        star = STARAccelerator()
        breakdown = star.layer_latency_breakdown(BertWorkload(seq_len=128))
        assert breakdown.projection_s > 0
        assert breakdown.attention_pipeline_s > 0
        assert breakdown.ffn_s > 0
        assert breakdown.total_s == pytest.approx(
            breakdown.projection_s + breakdown.attention_pipeline_s + breakdown.ffn_s
        )
        assert 0 <= breakdown.softmax_share <= 1

    def test_more_softmax_engines_do_not_hurt_latency(self):
        workload = BertWorkload(seq_len=128)
        few = STARAccelerator(num_softmax_engines=8)
        many = STARAccelerator(num_softmax_engines=128)
        assert many.inference_latency_s(workload) <= few.inference_latency_s(workload)
        assert many.power_w() > few.power_w()

    def test_with_format_propagates(self):
        config = STARConfig().with_format(MRPC_FORMAT)
        star = STARAccelerator(config)
        assert star.softmax_engine.fmt == MRPC_FORMAT

    def test_requires_positive_engine_count(self):
        with pytest.raises(ValueError):
            STARAccelerator(num_softmax_engines=0)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            STARAccelerator(schedule="magic")

    def test_executed_schedule_close_to_analytical(self):
        workload = BertWorkload(seq_len=128)
        analytical = STARAccelerator()
        executed = STARAccelerator(schedule="executed")
        a = analytical.inference_latency_s(workload)
        e = executed.inference_latency_s(workload)
        assert e == pytest.approx(a, rel=0.05)
        assert e != a  # discrete servers, not rate scaling

    def test_executed_schedule_exposes_resources(self):
        star = STARAccelerator(schedule="executed", num_softmax_engines=16)
        schedule = star.executed_attention_schedule(BertWorkload(seq_len=64))
        assert schedule.num_rows == 12 * 64
        assert schedule.num_softmax_engines == 16
        assert schedule.num_streams == 12
        assert sum(schedule.engine_rows) == schedule.num_rows

    def test_native_timing_is_undivided(self):
        star = STARAccelerator()
        workload = BertWorkload(seq_len=128)
        native = star.native_attention_stage_timing(workload)
        aggregate = star.attention_stage_timing(workload)
        assert native.score_row_s == pytest.approx(12 * aggregate.score_row_s)
        assert native.softmax_row_s == pytest.approx(64 * aggregate.softmax_row_s)
        assert native.num_rows == aggregate.num_rows

    def test_executed_schedule_rejects_granularity_typo(self):
        star = STARAccelerator()
        with pytest.raises(ValueError):
            star.executed_attention_schedule(BertWorkload(seq_len=32), granularity="vectr")
