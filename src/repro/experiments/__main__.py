"""Command-line entry point: ``python -m repro.experiments [e1 e2 ...]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import EXPERIMENTS, run_all


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and print the requested experiment reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the STAR paper's tables and figures from the simulation models.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiment ids to run (default: all of {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect serving-simulator hot-path counters (events, dispatch "
        "sweeps, wall time) and print the profile table after the reports",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[experiment_id].__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id}: {doc}")
        return 0

    if args.profile:
        from repro.serving.profiling import PROFILER

        PROFILER.enabled = True
        PROFILER.clear()

    try:
        print(run_all(args.experiments or None))
    except KeyError as error:
        # argparse-style exit(2) with the message itself, not KeyError's
        # quoted repr of it
        parser.error(error.args[0])

    if args.profile:
        print()
        print("== serving profile " + "=" * 41)
        print(PROFILER.format_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
