"""Energy ledger: named accumulation of energy, latency and area contributions.

Every engine model (STAR's softmax engine, the MatMul engine, the CMOS
baselines, the accelerator baselines) reports its costs by filling a ledger,
which keeps the bookkeeping uniform and lets the benchmark harness print
per-component breakdowns identical in structure to the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EnergyLedger", "LedgerEntry"]


@dataclass
class LedgerEntry:
    """One named contribution to the ledger."""

    name: str
    energy_j: float = 0.0
    latency_s: float = 0.0
    area_um2: float = 0.0
    count: int = 0

    def add(self, energy_j: float = 0.0, latency_s: float = 0.0, count: int = 1) -> None:
        """Accumulate one more occurrence of this contribution."""
        self.energy_j += energy_j
        self.latency_s += latency_s
        self.count += count


@dataclass
class EnergyLedger:
    """Accumulates energy / latency / area by component name."""

    entries: dict[str, LedgerEntry] = field(default_factory=dict)

    def record(
        self,
        name: str,
        energy_j: float = 0.0,
        latency_s: float = 0.0,
        count: int = 1,
    ) -> None:
        """Add a dynamic (per-operation) contribution under ``name``."""
        entry = self.entries.setdefault(name, LedgerEntry(name=name))
        entry.add(energy_j=energy_j, latency_s=latency_s, count=count)

    def record_area(self, name: str, area_um2: float) -> None:
        """Register the (static) area of component ``name``.

        Area is idempotent per name: recording the same component twice keeps
        the larger figure rather than double counting, because the physical
        block exists once regardless of how many operations it performs.
        """
        entry = self.entries.setdefault(name, LedgerEntry(name=name))
        entry.area_um2 = max(entry.area_um2, area_um2)

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #
    @property
    def total_energy_j(self) -> float:
        """Sum of all recorded energies."""
        return sum(entry.energy_j for entry in self.entries.values())

    @property
    def total_latency_s(self) -> float:
        """Sum of all recorded latencies (serial execution assumption)."""
        return sum(entry.latency_s for entry in self.entries.values())

    @property
    def total_area_um2(self) -> float:
        """Sum of all registered areas."""
        return sum(entry.area_um2 for entry in self.entries.values())

    def average_power_w(self) -> float:
        """Average power over the recorded activity (energy / latency)."""
        latency = self.total_latency_s
        if latency <= 0:
            raise ValueError("cannot compute average power with zero total latency")
        return self.total_energy_j / latency

    # ------------------------------------------------------------------ #
    # combination / reporting
    # ------------------------------------------------------------------ #
    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's entries into this one."""
        for name, entry in other.entries.items():
            self.record(
                name, energy_j=entry.energy_j, latency_s=entry.latency_s, count=entry.count
            )
            if entry.area_um2 > 0:
                self.record_area(name, entry.area_um2)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)

    def breakdown(self) -> list[tuple[str, float, float, float]]:
        """(name, energy, latency, area) rows sorted by descending energy."""
        rows = [
            (entry.name, entry.energy_j, entry.latency_s, entry.area_um2)
            for entry in self.entries.values()
        ]
        return sorted(rows, key=lambda row: row[1], reverse=True)

    def format_table(self) -> str:
        """Human-readable per-component table (used by examples and benches)."""
        lines = [f"{'component':<32} {'energy (J)':>14} {'latency (s)':>14} {'area (um^2)':>14}"]
        for name, energy, latency, area in self.breakdown():
            lines.append(f"{name:<32} {energy:>14.4e} {latency:>14.4e} {area:>14.4e}")
        lines.append(
            f"{'TOTAL':<32} {self.total_energy_j:>14.4e} "
            f"{self.total_latency_s:>14.4e} {self.total_area_um2:>14.4e}"
        )
        return "\n".join(lines)
