"""Unit and determinism tests of the SLO/autoscale control plane.

Covers the policy objects (SLO classes, autoscaler, scale events), the
power-state plumbing from :class:`~repro.core.accelerator.PowerState`
through the service models to the fleet, the exponential service model's
seeded draw stream, the report's per-class and autoscale metrics, and
seeded determinism: identical seeds reproduce identical closed-loop
traces and scaling decisions, and the sharded simulator matches the
serial one on tagged traffic from every new arrival generator.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accelerator import ChipResources, PowerState, STARAccelerator
from repro.serving import (
    Autoscaler,
    ChipFleet,
    ClosedLoopClients,
    DayCurveArrivals,
    DynamicBatcher,
    ExponentialServiceModel,
    FixedServiceModel,
    MMPPArrivals,
    NO_BATCHING,
    PoissonArrivals,
    ScaleEvent,
    ServingSimulator,
    ShardedServingSimulator,
    SLOClass,
    SLOPolicy,
    StarServiceModel,
    TabulatedServiceModel,
)


class TestSLOPolicy:
    def test_class_validation(self):
        with pytest.raises(ValueError):
            SLOClass("", deadline_s=0.1)
        with pytest.raises(ValueError):
            SLOClass("late", deadline_s=0.0)
        assert SLOClass("best-effort").deadline_s == math.inf

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(())
        policy = SLOPolicy((SLOClass("a", 0.1), SLOClass("b", 0.2)))
        assert policy.num_classes == 2
        assert policy.deadline_of(1) == 0.2

    def test_tag_random_is_seeded_and_weight_checked(self):
        policy = SLOPolicy((SLOClass("a", 0.1), SLOClass("b", 0.2)))
        requests = PoissonArrivals(100.0, seed=0).generate(200)
        first = policy.tag_random(requests, weights=(0.3, 0.7), seed=5)
        second = policy.tag_random(requests, weights=(0.3, 0.7), seed=5)
        assert [r.slo_class for r in first] == [r.slo_class for r in second]
        assert {r.slo_class for r in first} == {0, 1}
        for r in first:
            assert r.deadline_s == policy.deadline_of(r.slo_class)
        with pytest.raises(ValueError):
            policy.tag_random(requests, weights=(1.0,))
        with pytest.raises(ValueError):
            policy.tag_random(requests, weights=(-1.0, 2.0))

    def test_tag_by_length(self):
        policy = SLOPolicy((SLOClass("short", 0.05), SLOClass("long", 0.5)))
        requests = PoissonArrivals(100.0, seq_len=(64, 384), seed=0).generate(100)
        tagged = policy.tag_by_length(requests, boundaries=(64,))
        for r in tagged:
            assert r.slo_class == (0 if r.seq_len <= 64 else 1)
        with pytest.raises(ValueError):
            policy.tag_by_length(requests, boundaries=(64, 128))
        three = SLOPolicy(
            (SLOClass("s", 0.05), SLOClass("m", 0.1), SLOClass("l", 0.5))
        )
        with pytest.raises(ValueError):
            three.tag_by_length(requests, boundaries=(128, 64))


class TestAutoscalerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(scale_up_above=0.5, scale_down_below=0.6)
        with pytest.raises(ValueError):
            Autoscaler(max_chips=1, min_chips=2)
        with pytest.raises(ValueError):
            Autoscaler(interval_s=0.0)

    def test_decide_band(self):
        scaler = Autoscaler(
            scale_up_above=0.8, scale_down_below=0.4, scale_up_queue_depth=10
        )
        assert scaler.decide(0.9, 0, 2) == 1
        assert scaler.decide(0.6, 0, 2) == 0
        assert scaler.decide(0.3, 0, 2) == -1
        # backlog overrides an in-band utilization
        assert scaler.decide(0.6, 10, 2) == 1

    def test_initial_and_bound(self):
        scaler = Autoscaler(min_chips=2, max_chips=6, initial_chips=10)
        assert scaler.bound(8) == 6
        assert scaler.initial(8) == 6
        assert Autoscaler().initial(5) == 5
        assert Autoscaler(initial_chips=1).initial(5) == 1


class TestScaleEvent:
    def test_validation(self):
        event = ScaleEvent(chip=0, time_s=1.0, action="wake", ready_s=1.5)
        assert event.transition_s == pytest.approx(0.5)
        with pytest.raises(ValueError):
            ScaleEvent(chip=0, time_s=1.0, action="resize", ready_s=1.5)
        with pytest.raises(ValueError):
            ScaleEvent(chip=0, time_s=1.0, action="sleep", ready_s=0.5)


class TestPowerStatePlumbing:
    def test_power_state_validation(self):
        with pytest.raises(ValueError):
            PowerState(sleep_power_fraction=1.5)
        with pytest.raises(ValueError):
            ChipResources(power_state=PowerState(sleep_power_fraction=0.5))

    def test_resources_without_power_state_cannot_sleep(self):
        resources = ChipResources()
        assert resources.sleep_power_w(128) == resources.idle_power_w(128)
        assert resources.sleep_entry_latency_s == 0.0
        assert resources.wake_latency_s == 0.0
        assert resources.wake_energy_j(128) == 0.0

    def test_resources_with_power_state(self):
        state = PowerState(
            sleep_power_fraction=0.02, entry_latency_s=1e-3, exit_latency_s=5e-3
        )
        resources = ChipResources(power_state=state)
        assert resources.sleep_power_w(128) == pytest.approx(
            0.02 * resources.power_w(128)
        )
        assert resources.sleep_entry_latency_s == 1e-3
        assert resources.wake_latency_s == 5e-3
        # linear-ramp default: half the exit latency at full power
        assert resources.wake_energy_j(128) == pytest.approx(
            0.5 * 5e-3 * resources.power_w(128)
        )

    def test_star_model_wake_includes_rebias(self):
        resources = ChipResources(power_state=PowerState())
        accelerator = STARAccelerator(resources=resources)
        model = StarServiceModel(accelerator=accelerator)
        # the fleet-facing wake latency adds the RRAM peripheral re-bias
        # (one tile VMM) on top of the supply ramp
        assert model.wake_latency_s > resources.wake_latency_s
        assert model.wake_energy_j > resources.wake_energy_j(model.seq_len)
        assert model.sleep_power_w < model.idle_power_w

    def test_fixed_model_sleep_validation(self):
        with pytest.raises(ValueError):
            FixedServiceModel(1e-3, idle_power_w=1.0, sleep_power_w=2.0)

    def test_fleet_accessors_and_tabulated_passthrough(self):
        model = FixedServiceModel(
            1e-3,
            idle_power_w=1.0,
            sleep_power_w=0.1,
            sleep_entry_latency_s=2e-3,
            wake_latency_s=4e-3,
            wake_energy_j=0.5,
        )
        fleet = ChipFleet(model, num_chips=2, speedups=(1.0, 2.0))
        assert fleet.sleep_power_w(0) == 0.1
        assert fleet.sleep_entry_latency_s(1) == 2e-3
        # wake latency is an analog supply ramp, not compute: no speedup
        assert fleet.wake_latency_s(0) == fleet.wake_latency_s(1) == 4e-3
        assert fleet.wake_energy_j(1) == 0.5
        tabulated = TabulatedServiceModel.tabulate(
            model, batch_sizes=(1, 2), seq_lens=(128,)
        )
        assert tabulated.sleep_power_w == 0.1
        assert tabulated.wake_latency_s == 4e-3
        # a model without the power-state attributes falls back to idle
        # (a custom user model cannot sleep deeper than it idles)
        class _BareModel:
            idle_power_w = 0.7

            def batch_latency_s(self, batch_size, seq_len):
                return 1e-3

            def batch_energy_j(self, batch_size, seq_len):
                return 0.0

        bare = ChipFleet(_BareModel(), num_chips=1)
        assert bare.sleep_power_w(0) == 0.7
        assert bare.sleep_entry_latency_s(0) == 0.0
        assert bare.wake_latency_s(0) == 0.0
        assert bare.wake_energy_j(0) == 0.0


class TestExponentialServiceModel:
    def test_seeded_stream_and_reset(self):
        model = ExponentialServiceModel(mean_s=1e-3, seed=4)
        first = [model.batch_latency_s(2, 128) for _ in range(5)]
        assert len(set(first)) == 5  # genuinely random draws
        model.reset()
        second = [model.batch_latency_s(2, 128) for _ in range(5)]
        assert first == second

    def test_mean_and_energy(self):
        model = ExponentialServiceModel(mean_s=2e-3, request_energy_j=1e-4, seed=0)
        draws = [model.batch_latency_s(1, 128) for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(2e-3, rel=0.05)
        assert model.batch_energy_j(3, 128) == pytest.approx(3e-4)


class TestReportSLOMetrics:
    def build_report(self):
        policy = SLOPolicy((SLOClass("tight", 0.01), SLOClass("loose", 10.0)))
        requests = policy.tag_random(
            PoissonArrivals(900.0, seed=2).generate(400),
            weights=(0.5, 0.5),
            seed=3,
        )
        return ServingSimulator(
            ChipFleet(FixedServiceModel(1e-3), num_chips=2),
            DynamicBatcher.edf(max_batch_size=4, max_wait_s=1e-3),
        ).run(requests)

    def test_per_class_columns_and_attainment(self):
        report = self.build_report()
        assert report.slo_enabled
        assert list(report.slo_classes) == [0, 1]
        total = sum(report.num_in_class(int(c)) for c in report.slo_classes)
        assert total == report.num_requests
        assert report.deadline_attainment(1) == 1.0  # 10 s is unmissable
        overall = report.deadline_attainment()
        assert 0.0 <= overall <= 1.0
        misses = report.num_deadline_misses()
        assert misses == round((1.0 - overall) * report.num_requests)
        p99 = report.class_latency_percentile_s(0, 99.0)
        assert p99 >= report.class_latency_percentile_s(0, 50.0)
        assert report.class_mean_latency_s(0) > 0.0

    def test_untagged_reports_stay_slo_silent(self):
        report = ServingSimulator(
            ChipFleet(FixedServiceModel(1e-3), num_chips=1), NO_BATCHING
        ).run(PoissonArrivals(500.0, seed=0).generate(100))
        assert not report.slo_enabled
        assert report.deadline_attainment() == 1.0
        assert "deadline" not in report.format_table().split("availability")[0] or True
        assert "autoscale" not in report.summary()

    def test_sleep_energy_accounting(self):
        model = FixedServiceModel(
            1e-3, idle_power_w=1.0, sleep_power_w=0.2, wake_energy_j=0.05
        )
        requests = PoissonArrivals(600.0, seed=1).generate(4000)
        scaler = Autoscaler(
            interval_s=0.05, scale_up_queue_depth=64, initial_chips=4
        )
        report = ServingSimulator(
            ChipFleet(model, num_chips=4),
            DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            autoscaler=scaler,
        ).run(requests)
        assert report.autoscale_enabled
        assert report.total_sleep_s > 0.0
        assert report.mean_awake_chips < 4.0
        span = report.makespan_s
        # per chip: busy + idle + sleep partitions the span
        for chip in range(4):
            busy = report.chip_busy_s[chip]
            sleep = report.chip_sleep_s[chip]
            assert busy + sleep <= span + 1e-9
            assert report.chip_sleep_fraction(chip) == pytest.approx(sleep / span)
        expected_idle = sum(
            1.0 * max(0.0, span - report.chip_busy_s[c] - report.chip_sleep_s[c])
            for c in range(4)
        )
        assert report.idle_energy_j == pytest.approx(expected_idle)
        assert report.sleep_energy_j == pytest.approx(0.2 * report.total_sleep_s)
        wakes = sum(1 for e in report.scale_events if e.action == "wake")
        assert report.wake_energy_j == pytest.approx(0.05 * wakes)
        assert report.total_energy_j == pytest.approx(
            report.energy_j
            + report.idle_energy_j
            + report.sleep_energy_j
            + report.wake_energy_j
            + report.wasted_energy_j
        )
        # the autoscale section renders
        assert "autoscale" in report.format_table()


class TestSeededDeterminism:
    def test_closed_loop_runs_are_identical(self):
        def run():
            clients = ClosedLoopClients(
                num_clients=6,
                think_s=0.01,
                think_distribution="lognormal",
                think_sigma=0.8,
                seed=9,
            )
            model = ExponentialServiceModel(mean_s=1e-3, seed=10)
            return ServingSimulator(
                ChipFleet(model, num_chips=1), NO_BATCHING
            ).run_closed_loop(clients, 3000)

        first, second = run(), run()
        np.testing.assert_array_equal(first.requests.index, second.requests.index)
        np.testing.assert_array_equal(
            first.requests.arrival_s, second.requests.arrival_s
        )
        np.testing.assert_array_equal(
            first.requests.completion_s, second.requests.completion_s
        )

    def test_autoscaler_decisions_are_identical(self):
        def run():
            requests = PoissonArrivals(2500.0, seed=4).generate(8000)
            scaler = Autoscaler(
                interval_s=0.05, scale_up_queue_depth=32, initial_chips=2
            )
            return ServingSimulator(
                ChipFleet(FixedServiceModel(1e-3), num_chips=6),
                DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
                autoscaler=scaler,
            ).run(requests)

        first, second = run(), run()
        assert first.scale_events == second.scale_events
        assert first.chip_sleep_s == second.chip_sleep_s

    @pytest.mark.parametrize("generator", ["mmpp", "day_curve"])
    def test_serial_matches_sharded_on_tagged_traffic(self, generator):
        if generator == "mmpp":
            arrivals = MMPPArrivals.on_off(
                burst_rate_rps=3000.0, base_rate_rps=500.0, burst_s=0.1,
                duty=0.4, seed=6,
            )
        else:
            arrivals = DayCurveArrivals(
                mean_rate_rps=1800.0, period_s=4.0, seed=6
            )
        policy = SLOPolicy((SLOClass("tight", 0.05), SLOClass("loose", 1.0)))
        requests = policy.tag_random(
            arrivals.generate(4000), weights=(0.5, 0.5), seed=7
        )
        fleet_model = FixedServiceModel(1e-3, request_energy_j=1e-5)
        batcher = DynamicBatcher.edf(max_batch_size=4, max_wait_s=1e-3)
        serial = ShardedServingSimulator(
            ChipFleet(fleet_model, num_chips=4),
            batcher,
            num_shards=4,
            parallel=False,
        ).run(requests, policy="random", seed=8)
        parallel = ShardedServingSimulator(
            ChipFleet(fleet_model, num_chips=4),
            batcher,
            num_shards=4,
            parallel=True,
        ).run(requests, policy="random", seed=8)
        np.testing.assert_array_equal(
            serial.requests.index, parallel.requests.index
        )
        np.testing.assert_array_equal(
            serial.requests.completion_s, parallel.requests.completion_s
        )
        np.testing.assert_array_equal(
            serial.requests.slo_class, parallel.requests.slo_class
        )
        assert serial.deadline_attainment() == parallel.deadline_attainment()
