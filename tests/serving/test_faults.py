"""Unit tests of the fault machinery and its satellite fixes.

Covers the policy objects (retry backoff, admission control, the
MTBF/MTTR injector and its capacity-loss solver), the physically grounded
repair cost, input validation of the arrival layer (non-finite and
negative inputs rejected with the offending index named), RNG-stream
isolation (fault draws never perturb arrival traces), and the healthy
path's bit-identity when no fault component is configured.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    AdmissionController,
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    NO_ADMISSION,
    PoissonArrivals,
    Request,
    RetryPolicy,
    ServingSimulator,
    StarServiceModel,
    TraceArrivals,
)
from repro.serving.report import DropRecord


class TestRetryPolicy:
    def test_nominal_backoff_is_exponential_and_monotone(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_multiplier=2.0)
        assert policy.nominal_backoff_s(1) == pytest.approx(1e-3)
        assert policy.nominal_backoff_s(2) == pytest.approx(2e-3)
        assert policy.nominal_backoff_s(3) == pytest.approx(4e-3)
        backoffs = [policy.nominal_backoff_s(a) for a in range(1, 8)]
        assert backoffs == sorted(backoffs)

    def test_constant_backoff_with_unit_multiplier(self):
        policy = RetryPolicy(backoff_base_s=5e-4, backoff_multiplier=1.0)
        assert policy.nominal_backoff_s(5) == pytest.approx(5e-4)

    def test_jitter_envelope_and_determinism(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter=0.25)
        rng = np.random.default_rng(0)
        draws = [policy.backoff_s(1, rng) for _ in range(200)]
        assert all(0.75e-3 <= d <= 1.25e-3 for d in draws)
        again = [policy.backoff_s(1, np.random.default_rng(0)) for _ in range(1)]
        assert again[0] == draws[0]
        # no rng (or zero jitter) means the nominal value exactly
        assert policy.backoff_s(2, None) == policy.nominal_backoff_s(2)
        assert RetryPolicy(jitter=0.0).backoff_s(1, rng) == pytest.approx(1e-3)

    def test_deadline_of(self):
        assert RetryPolicy(deadline_s=None).deadline_of(3.0) == float("inf")
        assert RetryPolicy(deadline_s=0.25).deadline_of(3.0) == pytest.approx(3.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=float("nan"))
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.0)


class TestAdmissionController:
    def test_bounded_queue_admits(self):
        controller = AdmissionController(max_queue_depth=3)
        assert controller.admits(0) and controller.admits(2)
        assert not controller.admits(3) and not controller.admits(10)

    def test_unbounded_admits_everything(self):
        assert NO_ADMISSION.admits(10**9)
        assert not NO_ADMISSION.shed_expired

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(degraded_max_batch=0)


class TestFaultInjector:
    def test_availability_and_downtime(self):
        injector = FaultInjector(mtbf_s=0.9, detection_s=0.05, repair_s=0.05)
        assert injector.mean_downtime_s(123.0) == pytest.approx(0.1)  # override wins
        assert injector.steady_state_availability(0.0) == pytest.approx(0.9)
        derived = FaultInjector(mtbf_s=0.9, detection_s=0.05)
        assert derived.mean_downtime_s(0.05) == pytest.approx(0.1)

    def test_for_capacity_loss_solves_the_availability_equation(self):
        for loss in (0.05, 0.1, 0.2):
            injector = FaultInjector.for_capacity_loss(
                loss, repair_s=4e-3, detection_s=0.05
            )
            assert 1.0 - injector.steady_state_availability(4e-3) == pytest.approx(loss)

    def test_for_capacity_loss_validation(self):
        with pytest.raises(ValueError):
            FaultInjector.for_capacity_loss(0.0, repair_s=1e-3)
        with pytest.raises(ValueError):
            FaultInjector.for_capacity_loss(1.0, repair_s=1e-3)
        with pytest.raises(ValueError):
            FaultInjector.for_capacity_loss(0.1, repair_s=0.0, detection_s=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(mtbf_s=0.0)
        with pytest.raises(ValueError):
            FaultInjector(mtbf_s=float("inf"))
        with pytest.raises(ValueError):
            FaultInjector(mtbf_s=1.0, detection_s=-1.0)
        with pytest.raises(ValueError):
            FaultInjector(mtbf_s=1.0, repair_s=float("nan"))

    def test_session_streams_are_reproducible_and_independent(self):
        injector = FaultInjector(mtbf_s=1.0, seed=42)
        a = injector.session(3)
        b = injector.session(3)
        assert [a.time_to_failure_s(c) for c in range(3)] == [
            b.time_to_failure_s(c) for c in range(3)
        ]
        # adding a chip never reshuffles existing chips' draws
        wide = injector.session(4)
        narrow = injector.session(3)
        assert [wide.time_to_failure_s(c) for c in range(3)] == [
            narrow.time_to_failure_s(c) for c in range(3)
        ]
        # per-chip streams differ from each other
        fresh = injector.session(2)
        assert fresh.time_to_failure_s(0) != fresh.time_to_failure_s(1)


class TestRepairCost:
    def test_star_repair_is_the_full_model_reprogram(self):
        model = StarServiceModel()
        workload = model._base_workload
        per_layer = model.batch_cost.maintenance_reprogram_latency_s(
            model.accelerator.matmul_engine, workload.weight_operand_shapes_per_layer()
        )
        expected = workload.config.num_layers * per_layer
        assert expected > 0.0
        assert model.reprogram_latency_s == pytest.approx(expected)

    def test_fleet_scales_repair_by_chip_speedup(self):
        model = FixedServiceModel(1e-3, reprogram_latency_s=4e-3)
        fleet = ChipFleet(model, num_chips=2, speedups=(1.0, 2.0))
        assert fleet.reprogram_latency_s(0) == pytest.approx(4e-3)
        assert fleet.reprogram_latency_s(1) == pytest.approx(2e-3)

    def test_fixed_model_defaults_to_zero_repair(self):
        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=1)
        assert fleet.reprogram_latency_s(0) == 0.0

    def test_reprogram_validation(self):
        with pytest.raises(ValueError):
            FixedServiceModel(1e-3, reprogram_latency_s=-1.0)


class TestArrivalValidation:
    """Satellite fix: malformed traffic fails fast with the index named."""

    def test_request_rejects_non_finite_and_negative(self):
        with pytest.raises(ValueError, match="arrival_s must be finite"):
            Request(index=0, arrival_s=float("nan"), seq_len=128)
        with pytest.raises(ValueError, match="arrival_s"):
            Request(index=0, arrival_s=-1.0, seq_len=128)
        with pytest.raises(ValueError, match="seq_len"):
            Request(index=0, arrival_s=0.0, seq_len=0)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            PoissonArrivals(rate_rps=float("inf"))
        with pytest.raises(ValueError, match="rate_rps"):
            PoissonArrivals(rate_rps=0.0)

    def test_trace_rejects_non_finite_times_with_index(self):
        with pytest.raises(ValueError, match="at index 2"):
            TraceArrivals([0.0, 1.0, float("nan"), 3.0])
        with pytest.raises(ValueError, match="at index 1"):
            TraceArrivals([0.0, float("inf")])

    def test_trace_rejects_negative_and_decreasing_with_index(self):
        with pytest.raises(ValueError, match="non-negative.*at index 0"):
            TraceArrivals([-1.0, 1.0])
        with pytest.raises(ValueError, match="non-decreasing.*at index 2"):
            TraceArrivals([0.0, 2.0, 1.0])

    def test_trace_rejects_bad_per_request_lens_with_index(self):
        with pytest.raises(ValueError, match="per_request_lens.*at index 1"):
            TraceArrivals([0.0, 1.0], per_request_lens=[128, -4])
        with pytest.raises(ValueError, match="per_request_lens must be finite"):
            TraceArrivals([0.0, 1.0], per_request_lens=[128, float("nan")])
        with pytest.raises(ValueError, match="2 entries for 3"):
            TraceArrivals([0.0, 1.0, 2.0], per_request_lens=[128, 128])


class TestRngIsolation:
    """Satellite fix: fault streams never perturb arrival streams."""

    def test_arrival_trace_identical_with_and_without_faults(self):
        arrivals = PoissonArrivals(rate_rps=800.0, seq_len=128, seed=9)
        trace_a = arrivals.generate(500)
        trace_b = arrivals.generate(500)
        assert [(r.arrival_s, r.seq_len) for r in trace_a] == [
            (r.arrival_s, r.seq_len) for r in trace_b
        ]
        fleet = ChipFleet(
            FixedServiceModel(1e-3, reprogram_latency_s=1e-3), num_chips=2
        )
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=1e-3)
        healthy = ServingSimulator(fleet, batcher).run(trace_a)
        faulty = ServingSimulator(
            fleet,
            batcher,
            faults=FaultInjector(mtbf_s=0.05, detection_s=1e-3, seed=5),
            retry=RetryPolicy(max_attempts=3, jitter=0.3),
        ).run(trace_b)
        # the offered traffic (arrival timestamps) is identical either way
        healthy_arrivals = sorted(r.arrival_s for r in healthy.requests)
        faulty_arrivals = sorted(
            [r.arrival_s for r in faulty.requests]
            + [trace_b[d.index].arrival_s for d in faulty.shed]
            + [trace_b[d.index].arrival_s for d in faulty.abandoned]
        )
        assert healthy_arrivals == faulty_arrivals

    def test_fault_run_is_reproducible(self):
        requests = PoissonArrivals(rate_rps=800.0, seed=2).generate(400)
        fleet = ChipFleet(
            FixedServiceModel(1e-3, reprogram_latency_s=1e-3), num_chips=2
        )
        simulator = ServingSimulator(
            fleet,
            DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            faults=FaultInjector(mtbf_s=0.05, seed=5),
            retry=RetryPolicy(max_attempts=3, jitter=0.3),
        )
        first = simulator.run(requests)
        second = simulator.run(requests)
        assert first.requests == second.requests
        assert first.failures == second.failures
        assert first.retries == second.retries
        assert first.shed == second.shed


class TestHealthyPathIdentity:
    """With no fault component the simulator output is bit-identical."""

    def test_reports_equal_without_fault_components(self):
        requests = PoissonArrivals(rate_rps=600.0, seed=4).generate(300)
        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=2)
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=1e-3)
        plain = ServingSimulator(fleet, batcher)
        assert not plain.fault_aware
        report = plain.run(requests)
        assert not report.faults_enabled
        assert report.shed == () and report.failures == ()
        # fault-format additions stay out of the healthy report surface
        assert "goodput_rps" not in report.summary()
        assert "goodput" not in report.format_table()

    def test_fault_aware_flag_set_by_any_component(self):
        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=1)
        assert ServingSimulator(fleet, retry=RetryPolicy()).fault_aware
        assert ServingSimulator(fleet, admission=NO_ADMISSION).fault_aware
        assert ServingSimulator(
            fleet, faults=FaultInjector(mtbf_s=1.0)
        ).fault_aware

    def test_fault_aware_without_injector_matches_healthy_latencies(self):
        """NO_ADMISSION + no injector must serve identical work even on
        the fault-aware code path (records differ only in ordering)."""
        requests = PoissonArrivals(rate_rps=600.0, seed=4).generate(300)
        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=2)
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=1e-3)
        healthy = ServingSimulator(fleet, batcher).run(requests)
        aware = ServingSimulator(fleet, batcher, admission=NO_ADMISSION).run(requests)
        key = lambda r: (r.index, r.arrival_s, r.dispatch_s, r.completion_s, r.chip)
        assert sorted(map(key, healthy.requests)) == sorted(map(key, aware.requests))
        assert healthy.queue_peak == aware.queue_peak
        assert healthy.chip_busy_s == pytest.approx(aware.chip_busy_s)


class TestDropRecord:
    def test_reason_validated(self):
        with pytest.raises(ValueError, match="reason"):
            DropRecord(index=0, time_s=0.0, reason="because")
        record = DropRecord(index=0, time_s=0.0, reason="queue_full")
        assert record.attempts == 0
