"""The CAM/SUB crossbar: STAR's ``x_i - x_max`` stage (Fig. 1 of the paper).

One RRAM crossbar is used in a time-multiplexed manner for two jobs:

1. **CAM phase — find the maximum.**  Every representable score level is
   stored on one wordline, in *descending* order.  Each input ``x_i`` is
   searched against all wordlines in parallel; its matchline one-hot vector
   marks the row holding its value.  OR gates merge the match vectors of all
   inputs, and because the stored levels are descending, the first '1' in
   the merged vector is the row of ``x_max``.
2. **SUB phase — subtract.**  For each input, the crossbar is driven with
   the input's match vector as wordline voltages and a negative voltage on
   the ``x_max`` row; the source-line output is then ``x_i - x_max``.

The class simulates the functional behaviour exactly (including the optional
CAM search-error injection) and accounts latency / energy / area of the
512 x 18 crossbar, its matchline sense amplifiers and the OR-merge logic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.circuits.components import OrGateArray, Register
from repro.circuits.technology import DEFAULT_TECHNOLOGY
from repro.core.config import SoftmaxEngineConfig
from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.utils.validation import as_1d_float_array

__all__ = ["CamSubResult", "CamSubCrossbar"]


@dataclass(frozen=True)
class CamSubResult:
    """Output of one CAM/SUB pass over a score vector.

    Attributes
    ----------
    max_value:
        The quantised ``x_max``.
    max_row:
        CAM row index holding ``x_max`` (rows are in descending value order).
    differences:
        Non-negative magnitudes ``x_max - x_i`` on the quantisation grid.
    difference_codes:
        The same magnitudes as integer codes (units of one LSB).
    """

    max_value: float
    max_row: int
    differences: np.ndarray
    difference_codes: np.ndarray


class CamSubCrossbar:
    """Functional and cost model of the CAM/SUB crossbar."""

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        fmt = self.config.fmt
        cam_config = CAMConfig(
            rows=self.config.cam_sub_rows,
            bits=fmt.magnitude_bits,
            search_error_rate=0.0,
            seed=0,
        )
        self.cam = CAMCrossbar(cam_config)
        # store every representable level in DESCENDING order (Fig. 1):
        # row 0 holds the largest code, so the first merged match is x_max.
        self._codes_descending = np.arange(fmt.num_levels - 1, -1, -1, dtype=np.int64)
        self.cam.program_codes(self._codes_descending)
        self._area_model = CrossbarAreaModel()
        self._or_gates = OrGateArray.cost(self.config.cam_sub_rows, DEFAULT_TECHNOLOGY)
        self._result_register = Register.cost(self.config.cam_sub_rows, DEFAULT_TECHNOLOGY)

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def quantize_scores(self, scores: np.ndarray) -> np.ndarray:
        """Clip and round raw scores onto the engine's fixed-point grid.

        Scores are clipped to the offset-binary signed range of the CAM code
        space (e.g. [-32, +31.75] for the 8-bit CNEWS format), matching
        :class:`repro.nn.softmax_models.FixedPointSoftmax`.
        """
        fmt = self.config.fmt
        arr = np.asarray(scores, dtype=np.float64)
        clipped = np.clip(arr, fmt.signed_min_value, fmt.signed_max_value)
        return np.rint(clipped / fmt.resolution) * fmt.resolution

    def _score_to_row(self, quantized_scores: np.ndarray) -> np.ndarray:
        """Map quantised scores to CAM row indices (descending storage order).

        The CAM stores score *levels*; scores can be negative, so they are
        offset into the unsigned code space ``[0, num_levels)`` by biasing
        with half the range — the standard offset-binary trick that lets one
        unsigned CAM cover a signed range.
        """
        fmt = self.config.fmt
        bias_levels = fmt.num_levels // 2
        codes = np.rint(quantized_scores / fmt.resolution).astype(np.int64) + bias_levels
        codes = np.clip(codes, 0, fmt.num_levels - 1)
        # row r stores code (num_levels - 1 - r)
        return fmt.num_levels - 1 - codes

    def process(self, scores: np.ndarray) -> CamSubResult:
        """Run the CAM phase and the SUB phase over one score vector."""
        vector = as_1d_float_array(scores, "scores")
        if vector.size < 1:
            raise ValueError("score vector must not be empty")
        fmt = self.config.fmt
        quantized = self.quantize_scores(vector)

        # --- CAM phase: search each input, merge match vectors with ORs ----
        bias_levels = fmt.num_levels // 2
        search_codes = (
            np.rint(quantized / fmt.resolution).astype(np.int64) + bias_levels
        )
        search_codes = np.clip(search_codes, 0, fmt.num_levels - 1)
        matches = self.cam.search_many(search_codes)  # (n, rows)
        merged = np.any(matches, axis=0)
        hit_rows = np.flatnonzero(merged)
        if hit_rows.size == 0:
            raise RuntimeError("CAM search produced no match for any input")
        max_row = int(hit_rows[0])  # descending order: first hit is the max
        max_code = int(self.cam.stored_codes[max_row])
        max_value = (max_code - bias_levels) * fmt.resolution

        # --- SUB phase: x_max - x_i, non-negative magnitudes ---------------
        differences = np.clip(max_value - quantized, 0.0, None)
        difference_codes = np.rint(differences / fmt.resolution).astype(np.int64)
        return CamSubResult(
            max_value=max_value,
            max_row=max_row,
            differences=differences,
            difference_codes=difference_codes,
        )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """CAM/SUB crossbar array + matchline SAs + OR merge + result register."""
        cam_area = self._area_model.cam_crossbar_area_um2(
            self.config.cam_sub_rows, self.config.fmt.magnitude_bits
        )
        return cam_area + self._or_gates.area_um2 + self._result_register.area_um2

    def power_w(self) -> float:
        """Average power while continuously processing rows."""
        # energy per row over latency per row at a representative length
        representative_len = 128
        return self.row_energy_j(representative_len) / self.row_latency_s(representative_len)

    def row_latency_s(self, seq_len: int) -> float:
        """Latency of processing one score row of ``seq_len`` elements.

        The CAM phase searches the inputs one per cycle (all wordlines in
        parallel per input); the SUB phase likewise produces one difference
        per cycle through the same time-multiplexed crossbar.
        """
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        search = seq_len * self.cam.search_latency_s()
        merge = self._or_gates.latency_s
        subtract = seq_len * self.cam.search_latency_s()
        return search + merge + subtract

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of processing one score row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        search = seq_len * self.cam.search_energy_j()
        merge = seq_len * self._or_gates.energy_per_op_j
        subtract = seq_len * self.cam.search_energy_j()
        register = self._result_register.energy_per_op_j
        return search + merge + subtract + register
