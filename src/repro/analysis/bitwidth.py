"""Data-range analysis: choosing the softmax fixed-point format per dataset.

Section II of the paper: "we analyzed the data range of all x_i across three
popular datasets for the BERT-base model such that balances the computing
precision and hardware efficiency", arriving at 8 bits (6 integer + 2
fractional) for CNEWS, 9 bits (6 + 3) for MRPC and 7 bits (5 + 2) for CoLA.

The analyzer reproduces that procedure on the synthetic score profiles:

* **integer bits** cover the observed dynamic range of the scores — the
  99.9th percentile of the per-row spread ``max - min``, because after the
  ``x_i - x_max`` subtraction that spread is exactly the largest magnitude
  the engine must represent;
* **fractional bits** are the smallest count for which the fixed-point
  softmax stays within a distortion budget of the exact softmax, measured as
  the mean KL divergence over a large sample of score rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.softmax_models import FixedPointSoftmax
from repro.nn.functional import softmax as exact_softmax
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.stats import kl_divergence
from repro.workloads.scores import AttentionScoreGenerator, ScoreProfile

__all__ = ["BitwidthRequirement", "BitwidthAnalyzer"]


@dataclass(frozen=True)
class BitwidthRequirement:
    """Result of the bit-width analysis for one dataset profile."""

    dataset: str
    integer_bits: int
    frac_bits: int
    observed_range: float
    mean_kl: float

    @property
    def total_bits(self) -> int:
        """Total softmax input width (sign dropped, as in the paper)."""
        return self.integer_bits + self.frac_bits

    @property
    def fmt(self) -> FixedPointFormat:
        """The resulting fixed-point format."""
        return FixedPointFormat(self.integer_bits, self.frac_bits)


class BitwidthAnalyzer:
    """Derives the per-dataset softmax precision the paper's table reports."""

    def __init__(
        self,
        kl_budget: float = 1.6e-3,
        num_rows: int = 384,
        max_frac_bits: int = 6,
        range_coverage_percentile: float = 99.9,
        seed: int = 0,
    ) -> None:
        if kl_budget <= 0:
            raise ValueError(f"kl_budget must be positive, got {kl_budget}")
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        if max_frac_bits < 1:
            raise ValueError(f"max_frac_bits must be >= 1, got {max_frac_bits}")
        if not 50.0 < range_coverage_percentile <= 100.0:
            raise ValueError(
                "range_coverage_percentile must be in (50, 100], "
                f"got {range_coverage_percentile}"
            )
        self.kl_budget = kl_budget
        self.num_rows = num_rows
        self.max_frac_bits = max_frac_bits
        self.range_coverage_percentile = range_coverage_percentile
        self.seed = seed

    # ------------------------------------------------------------------ #
    # components of the analysis
    # ------------------------------------------------------------------ #
    def required_integer_bits(self, rows: np.ndarray) -> tuple[int, float]:
        """Integer bits covering the observed per-row score spread."""
        spreads = rows.max(axis=1) - rows.min(axis=1)
        observed = float(np.percentile(spreads, self.range_coverage_percentile))
        integer_bits = max(1, int(np.ceil(np.log2(max(observed, 1.0)))))
        return integer_bits, observed

    def mean_kl_for(self, rows: np.ndarray, fmt: FixedPointFormat) -> float:
        """Mean KL divergence of the fixed-point softmax against the exact one.

        The LUT is evaluated at high precision here so that the measured
        distortion isolates the *input* quantisation — the quantity the
        paper's bit-width table is about; the engine's own ``m = 4`` LUT
        precision is a separate, fixed design choice.
        """
        fixed = FixedPointSoftmax(fmt, lut_frac_bits=12)
        approx = fixed(rows)
        exact = exact_softmax(rows)
        kls = [kl_divergence(exact[i], approx[i]) for i in range(rows.shape[0])]
        return float(np.mean(kls))

    def required_frac_bits(
        self, rows: np.ndarray, integer_bits: int
    ) -> tuple[int, float]:
        """Smallest fractional bit count meeting the KL distortion budget."""
        last_kl = float("inf")
        for frac_bits in range(1, self.max_frac_bits + 1):
            fmt = FixedPointFormat(integer_bits, frac_bits)
            last_kl = self.mean_kl_for(rows, fmt)
            if last_kl <= self.kl_budget:
                return frac_bits, last_kl
        return self.max_frac_bits, last_kl

    # ------------------------------------------------------------------ #
    # end-to-end analysis
    # ------------------------------------------------------------------ #
    def analyze(self, profile: ScoreProfile, seq_len: int | None = None) -> BitwidthRequirement:
        """Full bit-width analysis for one dataset profile."""
        generator = AttentionScoreGenerator(profile, seed=self.seed)
        rows = generator.rows(self.num_rows, seq_len)
        integer_bits, observed_range = self.required_integer_bits(rows)
        frac_bits, mean_kl = self.required_frac_bits(rows, integer_bits)
        return BitwidthRequirement(
            dataset=profile.name,
            integer_bits=integer_bits,
            frac_bits=frac_bits,
            observed_range=observed_range,
            mean_kl=mean_kl,
        )

    def analyze_all(
        self, profiles: dict[str, ScoreProfile] | list[ScoreProfile]
    ) -> list[BitwidthRequirement]:
        """Analyse a collection of profiles (the paper's three datasets)."""
        items = profiles.values() if isinstance(profiles, dict) else profiles
        return [self.analyze(profile) for profile in items]
