"""Analog RRAM crossbar performing in-situ vector-matrix multiplication (VMM).

This is the workhorse substrate of every RRAM PIM accelerator: a matrix is
programmed into cell conductances, an input vector is applied as wordline
voltages and, by Kirchhoff's law, each bitline current is the dot product of
the input vector with the corresponding matrix column.

The model is behavioural but captures the effects that matter at
architecture level:

* conductance quantisation to the device's programmable levels;
* bit-serial streaming of multi-bit inputs through low-resolution DACs
  (the ISAAC / ReTransformer operating mode), with shift-and-add
  accumulation of the per-cycle ADC outputs;
* differential (positive/negative column pair) encoding of signed weights;
* programming variation, read noise and stuck-at faults via
  :class:`~repro.rram.noise.NoiseModel`;
* ADC quantisation of bitline currents, with the full-scale range set by the
  worst-case column current;
* per-access energy and latency accounting that the architecture-level cost
  model aggregates.

Two functional entry points share the model: :meth:`AnalogCrossbar.matvec`
processes one input vector, and :meth:`AnalogCrossbar.matvec_batch`
processes a whole ``(batch, rows)`` block with no Python-level per-vector
loop.  The per-vector path delegates to the batched one, and the batched
kernels are built exclusively from row-independent NumPy operations (plus an
exact integer-arithmetic fast path for ideal devices), so the two are
**bit-identical** under every configuration — differential or not, seeded
read noise, IR drop and ADC saturation included.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.rram.converters import ADC, DAC, SampleAndHold
from repro.rram.device import RRAMDevice, RRAMDeviceConfig
from repro.rram.noise import IDEAL_NOISE, NoiseConfig, NoiseModel
from repro.utils.validation import as_1d_float_array, as_2d_float_array

__all__ = ["CrossbarConfig", "CrossbarAccessStats", "AnalogCrossbar"]

# Upper bound on the float64 scratch matvec_batch holds at once (8 M
# doubles = 64 MB) — pre-drawn noise deviates on the noisy path, stacked
# code/current buffers on the exact path.  Larger blocks are split into
# chunks; rows are independent and the noise stream is consumed in
# per-vector order, so chunking never changes the results.
_CHUNK_DOUBLES = 1 << 23


class _Workspace(threading.local):
    """Reusable per-thread scratch arrays for the batched exact kernel.

    Large per-call temporaries exceed the allocator's mmap threshold, so a
    fresh allocation pays page-fault cost on every VMM.  The workspace
    keeps the two hot buffers alive between calls (a shape change simply
    reallocates); it is thread-local, so crossbars driven from concurrent
    sweep workers never share buffers.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        arr = self._arrays.get(key)
        if arr is None or arr.shape != shape:
            arr = np.empty(shape, dtype=np.float64)
            self._arrays[key] = arr
        return arr


_WORKSPACE = _Workspace()


@dataclass(frozen=True)
class CrossbarConfig:
    """Dimensions and peripheral configuration of one crossbar array.

    Attributes
    ----------
    rows / cols:
        Array dimensions (wordlines x bitlines).  STAR uses 128x128 for the
        MatMul engine and 256x18 / 512x18 arrays inside the Softmax engine.
    device:
        RRAM cell parameters.
    noise:
        Non-ideality configuration.
    adc_bits:
        Resolution of the column ADCs (5 for the MatMul engine, following
        ReTransformer).
    dac_bits:
        Resolution of the wordline DACs (1 = bit-serial input streaming).
    input_bits:
        Precision at which input vectors are quantised before being streamed
        through the DACs, ``ceil(input_bits / dac_bits)`` cycles per VMM.
    differential:
        Encode signed weights on positive/negative column pairs.
    adc_share:
        How many columns share one ADC through a sample-and-hold mux
        (8 is the ISAAC/ReTransformer assumption).
    wire_resistance_ohm:
        Interconnect resistance of one wordline/bitline segment between
        adjacent cells.  0 (default) disables the IR-drop model; a typical
        value for scaled metal is 1-5 ohm per segment.  Cells far from the
        drivers see a lower effective voltage, which the first-order model
        captures as a per-position attenuation of the cell conductance.
    """

    rows: int = 128
    cols: int = 128
    device: RRAMDeviceConfig = field(default_factory=RRAMDeviceConfig)
    noise: NoiseConfig = field(default_factory=lambda: IDEAL_NOISE)
    adc_bits: int = 5
    dac_bits: int = 1
    input_bits: int = 8
    differential: bool = False
    adc_share: int = 8
    wire_resistance_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"crossbar dimensions must be positive, got {self.rows}x{self.cols}"
            )
        if not 1 <= self.dac_bits <= 16:
            raise ValueError(f"dac_bits must be in [1, 16], got {self.dac_bits}")
        if not 1 <= self.input_bits <= 32:
            raise ValueError(f"input_bits must be in [1, 32], got {self.input_bits}")
        if self.adc_share < 1:
            raise ValueError(f"adc_share must be >= 1, got {self.adc_share}")
        if self.wire_resistance_ohm < 0:
            raise ValueError(
                f"wire_resistance_ohm must be >= 0, got {self.wire_resistance_ohm}"
            )

    @property
    def physical_cols(self) -> int:
        """Number of physical bitlines after differential expansion."""
        return self.cols * 2 if self.differential else self.cols

    @property
    def num_cells(self) -> int:
        """Total number of RRAM cells in the array."""
        return self.rows * self.physical_cols

    @property
    def num_adcs(self) -> int:
        """Number of ADC instances (columns / adc_share, at least one)."""
        return max(1, self.physical_cols // self.adc_share)

    @property
    def input_cycles(self) -> int:
        """Number of bit-serial cycles needed to stream one input vector."""
        return -(-self.input_bits // self.dac_bits)  # ceil division


@dataclass
class CrossbarAccessStats:
    """Cumulative crossbar access counters used for energy/latency accounting.

    Distinct from :class:`repro.core.access_stats.AccessStats`, which counts
    the softmax engine's CAM/LUT/counter/divider accesses — this one counts
    the analog VMM substrate's array, converter and programming accesses.
    Several crossbars (e.g. all tiles of a MatMul engine) can share one
    instance, in which case their accesses accumulate in one place.

    The counters are plain unsynchronized integers: concurrent sweep
    workers should each own their engine/crossbars (and therefore their
    stats); crossbars sharing one stats object must be driven from a
    single thread.
    """

    vmm_ops: int = 0
    array_activations: int = 0
    cell_reads: int = 0
    adc_conversions: int = 0
    dac_conversions: int = 0
    programming_pulses: int = 0

    def merge(self, other: "CrossbarAccessStats") -> None:
        """Accumulate another counter set into this one."""
        self.vmm_ops += other.vmm_ops
        self.array_activations += other.array_activations
        self.cell_reads += other.cell_reads
        self.adc_conversions += other.adc_conversions
        self.dac_conversions += other.dac_conversions
        self.programming_pulses += other.programming_pulses


class AnalogCrossbar:
    """A programmable RRAM crossbar with analog VMM readout.

    Parameters
    ----------
    config:
        Array dimensions and peripheral configuration.
    stats:
        Optional shared access-counter object.  When several crossbars form
        one engine (the MatMul engine's tile bank), passing the engine's
        stats object here makes every tile record into the same counters.
    """

    def __init__(
        self,
        config: CrossbarConfig | None = None,
        stats: CrossbarAccessStats | None = None,
    ) -> None:
        self.config = config or CrossbarConfig()
        self.device = RRAMDevice(self.config.device)
        self.noise = NoiseModel(self.config.noise)
        self.adc = ADC(bits=self.config.adc_bits)
        self.dac = DAC(bits=self.config.dac_bits)
        self.sample_hold = SampleAndHold()
        self.stats = stats if stats is not None else CrossbarAccessStats()
        self._weights: np.ndarray | None = None
        self._conductance_pos: np.ndarray | None = None
        self._conductance_neg: np.ndarray | None = None
        self._exact_levels: np.ndarray | None = None
        self._weight_scale: float = 1.0
        self._ir_drop_factors = self._build_ir_drop_factors()

    def _build_ir_drop_factors(self) -> np.ndarray | None:
        """Per-cell attenuation from wordline/bitline IR drop (first order).

        A cell at row ``r`` and column ``c`` sees its read voltage divided
        across the wire segments between it and the drivers/sense node:
        ``factor = 1 / (1 + g_cell_max * r_wire * (distance_to_driver +
        distance_to_sense))`` — the standard first-order approximation used
        by behavioural PIM simulators.  Returns ``None`` when disabled.
        """
        r_wire = self.config.wire_resistance_ohm
        if r_wire <= 0.0:
            return None
        g_max = self.device.config.g_max_s
        rows = np.arange(self.config.rows)[:, None]
        cols = np.arange(self.config.cols)[None, :]
        # wordline drivers sit at column 0, bitline sense amplifiers at row 0
        distance = cols + (self.config.rows - 1 - rows)
        return 1.0 / (1.0 + g_max * r_wire * distance)

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether a weight matrix has been written into the array."""
        return self._conductance_pos is not None

    @property
    def weights(self) -> np.ndarray:
        """The logical weight matrix most recently programmed."""
        if self._weights is None:
            raise RuntimeError("crossbar has not been programmed yet")
        return self._weights.copy()

    @property
    def weight_scale(self) -> float:
        """Scale factor mapping normalised weights back to logical values."""
        return self._weight_scale

    def program(self, weights: np.ndarray) -> None:
        """Write a logical ``rows x cols`` weight matrix into the array.

        Weights are linearly mapped onto the conductance window.  With
        ``differential=True`` negative weights go to the negative column of
        each pair; otherwise weights must be non-negative.
        """
        matrix = as_2d_float_array(weights, "weights")
        cfg = self.config
        if matrix.shape != (cfg.rows, cfg.cols):
            raise ValueError(
                f"weight matrix shape {matrix.shape} does not match crossbar "
                f"{cfg.rows}x{cfg.cols}"
            )
        if not cfg.differential and np.any(matrix < 0):
            raise ValueError(
                "negative weights require a differential crossbar (config.differential=True)"
            )

        max_abs = float(np.max(np.abs(matrix)))
        self._weight_scale = max_abs if max_abs > 0 else 1.0
        normalized = matrix / self._weight_scale  # in [-1, 1]

        g_min = self.device.config.g_min_s
        g_max = self.device.config.g_max_s
        span = g_max - g_min

        pos = np.clip(normalized, 0.0, 1.0)
        neg = np.clip(-normalized, 0.0, 1.0)

        target_pos = g_min + pos * span
        target_neg = g_min + neg * span

        # quantise to programmable levels, then apply programming variation
        levels_pos = self.device.conductance_to_level(target_pos)
        levels_neg = self.device.conductance_to_level(target_neg)
        target_pos = self.device.level_to_conductance(levels_pos)
        target_neg = self.device.level_to_conductance(levels_neg)
        self._conductance_pos = self.noise.apply_programming(target_pos, g_min, g_max)
        self._conductance_neg = (
            self.noise.apply_programming(target_neg, g_min, g_max)
            if cfg.differential
            else None
        )
        # With an ideal write path the cells stay exactly on the level grid,
        # which enables matvec_batch's exact integer-arithmetic kernel: the
        # (differential) level matrix is all it needs, and the positive /
        # negative column contributions fold into one exact integer
        # difference ahead of time.
        if self.noise.config.is_programming_ideal:
            levels_eff = levels_pos.astype(np.float64)
            if cfg.differential:
                levels_eff = levels_eff - levels_neg.astype(np.float64)
            self._exact_levels = levels_eff
        else:
            self._exact_levels = None
        self._weights = matrix.copy()
        self.stats.programming_pulses += int(matrix.size) * (2 if cfg.differential else 1)

    # ------------------------------------------------------------------ #
    # compute
    # ------------------------------------------------------------------ #
    def matvec(self, inputs: np.ndarray, quantize_output: bool = True) -> np.ndarray:
        """In-situ VMM: returns an estimate of ``inputs @ W``.

        The input vector is quantised to ``input_bits`` and streamed through
        the DACs in ``input_cycles`` bit-serial slices; per-cycle bitline
        currents pass through the column ADCs and are accumulated with the
        appropriate binary weight — exactly the shift-and-add dataflow of
        ISAAC-style PIM tiles.  Delegates to :meth:`matvec_batch` with a
        single-row block, so the per-vector and batched paths are the same
        code and therefore bit-identical by construction.

        Parameters
        ----------
        inputs:
            Length-``rows`` non-negative vector in logical units.
        quantize_output:
            When ``True`` (default) the per-cycle currents pass through the
            ADCs, adding quantisation error exactly as the hardware would.
            ``False`` gives the noiseless analog result (useful to isolate
            error sources in tests).
        """
        vector = as_1d_float_array(inputs, "inputs")
        return self.matvec_batch(vector[None, :], quantize_output=quantize_output)[0]

    def matvec_batch(self, inputs: np.ndarray, quantize_output: bool = True) -> np.ndarray:
        """In-situ VMM of a whole ``(batch, rows)`` input block.

        Streams every vector of the block through the bit-serial dataflow in
        pure vectorized NumPy — input quantisation, DAC slicing, noise
        application, ADC conversion and shift-and-add accumulation all act
        on the full block at once.  The result is **bit-identical** to
        calling :meth:`matvec` on each row in order, including under seeded
        read noise: the noise deviates are pre-drawn from the generator in
        exactly the order the per-vector loop would consume them, and every
        reduction uses a row-independent kernel.

        Two kernels back the per-cycle current computation:

        * with ideal devices (no programming/read noise, no IR drop) the
          cells sit exactly on the conductance level grid, so each cycle's
          bitline current is an integer combination of DAC codes and cell
          levels — computed as an exact integer-valued BLAS matmul, which
          floating-point evaluation order cannot perturb;
        * otherwise a (batched) ``einsum`` contraction over the perturbed
          conductances is used, whose per-element reduction order does not
          depend on the batch size.

        Large noisy blocks are processed in chunks so the pre-drawn noise
        stays within a fixed memory budget; chunking preserves the stream
        order and therefore the results.

        Parameters
        ----------
        inputs:
            ``(batch, rows)`` block of non-negative vectors in logical
            units.  Each row is scaled to its own maximum, exactly as the
            per-vector path does.
        quantize_output:
            As in :meth:`matvec`.

        Returns
        -------
        ``(batch, cols)`` array estimating ``inputs @ W`` row by row.
        """
        if not self.is_programmed:
            raise RuntimeError("crossbar must be programmed before matvec")
        block = as_2d_float_array(inputs, "inputs")
        cfg = self.config
        if block.shape[1] != cfg.rows:
            raise ValueError(
                f"input length {block.shape[1]} does not match crossbar rows {cfg.rows}"
            )
        if np.any(block < 0):
            raise ValueError("wordline inputs must be non-negative voltages/counts")
        batch = block.shape[0]
        if batch == 0:
            return np.zeros((0, cfg.cols), dtype=np.float64)

        if self.noise.config.read_noise_sigma > 0.0:
            per_vector = cfg.input_cycles * self._deviates_per_cycle()
        else:
            per_vector = cfg.input_cycles * (cfg.rows + cfg.cols)  # exact-kernel scratch
        chunk = max(1, _CHUNK_DOUBLES // max(1, per_vector))
        if batch > chunk:
            return np.concatenate(
                [
                    self._matvec_block(block[i : i + chunk], quantize_output)
                    for i in range(0, batch, chunk)
                ],
                axis=0,
            )
        return self._matvec_block(block, quantize_output)

    def _deviates_per_cycle(self) -> int:
        """Read-noise deviates one vector consumes per bit-serial cycle."""
        cfg = self.config
        cells = cfg.rows * cfg.cols
        return cells * (2 if cfg.differential else 1) + cfg.cols

    def _matvec_block(self, block: np.ndarray, quantize_output: bool) -> np.ndarray:
        """The batched bit-serial dataflow for one in-memory block."""
        cfg = self.config
        batch = block.shape[0]
        v_read = self.device.config.read_voltage_v
        span = self.device.config.g_max_s - self.device.config.g_min_s

        in_max = np.max(block, axis=1)
        in_scale = np.where(in_max > 0.0, in_max, 1.0)
        max_input_code = (1 << cfg.input_bits) - 1
        input_codes = np.rint(block / in_scale[:, None] * max_input_code).astype(np.int64)
        full_scale = cfg.rows * v_read * span

        if (
            self.noise.config.read_noise_sigma <= 0.0
            and self._ir_drop_factors is None
            and self._exact_levels is not None
        ):
            accumulated = self._accumulate_exact(input_codes, quantize_output, full_scale)
        else:
            accumulated = self._accumulate_general(input_codes, quantize_output, full_scale)

        self._record_cycle_access(batch * cfg.input_cycles)
        self.stats.vmm_ops += batch

        # Convert accumulated currents back to logical units.
        #   per-cycle current = sum_r (code_r / dac_max * v_read) * (w_rc / w_scale) * span
        #   shift-and-add over cycles reconstructs code_r = x_r / in_scale * max_input_code
        # hence logical = accumulated * dac_max * in_scale * w_scale
        #                 / (v_read * span * max_input_code)
        dac_max = self.dac.num_levels - 1
        logical = (
            accumulated
            * dac_max
            * in_scale[:, None]
            * self._weight_scale
            / (v_read * span * max_input_code)
        )
        return logical

    def _accumulate_exact(
        self, input_codes: np.ndarray, quantize_output: bool, full_scale: float
    ) -> np.ndarray:
        """Shift-and-add accumulation via the exact integer-arithmetic kernel.

        With on-grid cells (``g = g_min + level * g_step``) and
        code-proportional drive voltages, each cycle's bitline current is an
        integer combination of DAC codes and cell levels (differential
        column pairs fold into one pre-computed level difference, and the
        single-ended ``g_min`` baseline subtraction cancels exactly).  All
        cycles stack into **one** integer-valued BLAS matmul whose products
        and partial sums are exact float64 integers — evaluation order
        cannot perturb them, so the batched result is bit-identical to the
        single-row one.
        """
        cfg = self.config
        batch = input_codes.shape[0]
        dac_levels = self.dac.num_levels
        cycles = cfg.input_cycles
        span = self.device.config.g_max_s - self.device.config.g_min_s
        # conductance step between adjacent programmable levels, and the
        # wordline voltage one DAC code corresponds to
        g_step = span / (self.device.config.num_levels - 1)
        volt_step = self.device.config.read_voltage_v / (dac_levels - 1)

        # dac_levels is always a power of two, so the bit-serial slices come
        # from masks and shifts — identical integers, far fewer passes.  The
        # slices are written straight into the float operand of the stacked
        # matmul, and the scale/ADC chain runs in place on its output: the
        # kernel allocates exactly two large arrays per call.
        mask = dac_levels - 1
        codes_f = _WORKSPACE.get("codes_f", (cycles, batch, cfg.rows))
        remaining = input_codes
        for cycle in range(cycles):
            codes_f[cycle] = remaining & mask
            remaining = remaining >> self.dac.bits
        level_sums = _WORKSPACE.get("level_sums", (cycles * batch, cfg.cols))
        np.matmul(codes_f.reshape(cycles * batch, cfg.rows), self._exact_levels, out=level_sums)
        currents = level_sums.reshape(cycles, batch, cfg.cols)
        np.multiply(currents, g_step * volt_step, out=currents)

        if quantize_output:
            if cfg.differential:
                self.adc.convert_signed(currents, full_scale, out=currents)
            else:
                np.clip(currents, 0.0, None, out=currents)
                self.adc.convert(currents, full_scale, out=currents)

        accumulated = np.zeros((batch, cfg.cols), dtype=np.float64)
        cycle_weight = 1
        for cycle in range(cycles):
            accumulated += currents[cycle] * cycle_weight
            cycle_weight *= dac_levels
        return accumulated

    def _accumulate_general(
        self, input_codes: np.ndarray, quantize_output: bool, full_scale: float
    ) -> np.ndarray:
        """Shift-and-add accumulation through the full analog signal chain.

        Used whenever read noise, IR drop or off-grid (programming-noisy)
        conductances make the exact integer kernel inapplicable.  The
        per-cycle contraction uses ``einsum``, whose per-element reduction
        order is independent of the batch size, and read-noise deviates are
        pre-drawn in exactly the order the per-vector loop would draw them
        — keeping this path, too, bit-identical to looped :meth:`matvec`
        calls.
        """
        cfg = self.config
        batch = input_codes.shape[0]
        v_read = self.device.config.read_voltage_v
        g_min = self.device.config.g_min_s
        dac_levels = self.dac.num_levels

        noise_pos = noise_neg = noise_cur = None
        g_pos_eff = g_neg_eff = None
        if self.noise.config.read_noise_sigma > 0.0:
            # Pre-draw every deviate of the block in the per-vector loop's
            # consumption order: for each vector, for each cycle — positive
            # conductances, then negative (differential), then currents.
            cells = cfg.rows * cfg.cols
            per_cycle = self._deviates_per_cycle()
            flat = self.noise.draw_read_deviates(batch * cfg.input_cycles * per_cycle)
            flat = flat.reshape(batch, cfg.input_cycles, per_cycle)
            noise_pos = flat[:, :, :cells].reshape(batch, cfg.input_cycles, cfg.rows, cfg.cols)
            if cfg.differential:
                noise_neg = flat[:, :, cells : 2 * cells].reshape(
                    batch, cfg.input_cycles, cfg.rows, cfg.cols
                )
            noise_cur = flat[:, :, per_cycle - cfg.cols :]
        else:
            # deterministic read path: hoist the effective conductances
            g_pos_eff = self._conductance_pos
            g_neg_eff = self._conductance_neg
            if self._ir_drop_factors is not None:
                g_pos_eff = g_pos_eff * self._ir_drop_factors
                if cfg.differential:
                    g_neg_eff = g_neg_eff * self._ir_drop_factors

        accumulated = np.zeros((batch, cfg.cols), dtype=np.float64)
        remaining = input_codes.copy()
        cycle_weight = 1
        for cycle in range(cfg.input_cycles):
            slice_codes = remaining % dac_levels
            remaining //= dac_levels

            voltages = self.dac.drive(slice_codes, v_read)
            if noise_pos is not None:
                g_pos = self.noise.apply_read_with(self._conductance_pos, noise_pos[:, cycle])
                if self._ir_drop_factors is not None:
                    g_pos = g_pos * self._ir_drop_factors
                currents = np.einsum("br,brc->bc", voltages, g_pos)
                if cfg.differential:
                    g_neg = self.noise.apply_read_with(
                        self._conductance_neg, noise_neg[:, cycle]
                    )
                    if self._ir_drop_factors is not None:
                        g_neg = g_neg * self._ir_drop_factors
                    currents = currents - np.einsum("br,brc->bc", voltages, g_neg)
            else:
                currents = np.einsum("br,rc->bc", voltages, g_pos_eff)
                if cfg.differential:
                    currents = currents - np.einsum("br,rc->bc", voltages, g_neg_eff)
            if not cfg.differential:
                currents = currents - (np.sum(voltages, axis=1) * g_min)[:, None]
            if noise_cur is not None:
                currents = self.noise.perturb_current_with(currents, noise_cur[:, cycle])

            if quantize_output:
                if cfg.differential:
                    currents = self.adc.convert_signed(currents, full_scale)
                else:
                    currents = self.adc.convert(np.clip(currents, 0.0, None), full_scale)

            accumulated += currents * cycle_weight
            cycle_weight *= dac_levels
        return accumulated

    def ideal_matvec(self, inputs: np.ndarray) -> np.ndarray:
        """The mathematically exact ``inputs @ W`` for comparison in tests."""
        vector = as_1d_float_array(inputs, "inputs")
        return vector @ self.weights

    def _record_cycle_access(self, count: int = 1) -> None:
        cfg = self.config
        self.stats.array_activations += count
        self.stats.cell_reads += count * cfg.num_cells
        self.stats.adc_conversions += count * cfg.physical_cols
        self.stats.dac_conversions += count * cfg.rows

    # ------------------------------------------------------------------ #
    # per-access costs (aggregated by repro.arch)
    # ------------------------------------------------------------------ #
    def cycle_input_stage_s(self) -> float:
        """Input portion of one bit-serial cycle: DAC drive + settle + S&H sampling.

        This is the part of a cycle that a *double-buffered* activation
        buffer can hide: while the shared ADCs read out the sampled currents
        of cycle ``i``, the wordline DACs already drive cycle ``i + 1`` and a
        second sample-and-hold bank captures its bitline currents.
        """
        return self.dac.latency_s + self.device.read_latency_s() + self.sample_hold.latency_s

    def cycle_readout_s(self) -> float:
        """Readout portion of one bit-serial cycle: the column-muxed ADC scans."""
        return self.adc.latency_s * self.config.adc_share  # columns muxed onto shared ADCs

    def cycle_latency_s(self) -> float:
        """Latency of one serialized bit-serial cycle: DAC drive + settle + muxed ADC."""
        return self.cycle_input_stage_s() + self.cycle_readout_s()

    def overlapped_cycle_latency_s(self) -> float:
        """Steady-state cycle latency with double-buffered inputs.

        With two S&H banks the input stage of the next cycle overlaps the
        ADC readout of the current one, so the steady-state cycle interval
        is whichever stage is slower — never more than the serialized cycle.
        """
        return max(self.cycle_input_stage_s(), self.cycle_readout_s())

    def vmm_latency_s(self) -> float:
        """Latency of one full VMM (all bit-serial input cycles, serialized)."""
        return self.cycle_latency_s() * self.config.input_cycles

    def overlapped_vmm_latency_s(self) -> float:
        """Steady-state latency of one VMM whose input staging is double-buffered."""
        return self.overlapped_cycle_latency_s() * self.config.input_cycles

    def cycle_energy_j(self) -> float:
        """Energy of one bit-serial cycle (array + DACs + ADCs + S&H)."""
        cfg = self.config
        g_mid = 0.5 * (self.device.config.g_min_s + self.device.config.g_max_s)
        array_energy = float(
            np.sum(self.device.read_energy_j(np.full(cfg.num_cells, g_mid)))
        )
        dac_energy = cfg.rows * self.dac.energy_per_conversion_j
        adc_energy = cfg.physical_cols * self.adc.energy_per_conversion_j
        sh_energy = cfg.physical_cols * self.sample_hold.energy_per_sample_j
        return array_energy + dac_energy + adc_energy + sh_energy

    def vmm_energy_j(self) -> float:
        """Energy of one full VMM (all bit-serial input cycles)."""
        return self.cycle_energy_j() * self.config.input_cycles

    def programming_latency_s(self) -> float:
        """Latency of programming the full array (row-parallel writes)."""
        return self.device.write_latency_s() * self.config.rows

    def programming_energy_j(self) -> float:
        """Energy of programming the full array once."""
        return self.device.write_energy_j() * self.config.num_cells
