"""Comparison designs: GPU, PipeLayer, ReTransformer, Softermax, CMOS softmax."""

from repro.baselines.cmos_softmax import CMOSSoftmaxConfig, CMOSSoftmaxUnit
from repro.baselines.gpu import TITAN_RTX, GPUConfig, GPULatencyBreakdown, GPUModel
from repro.baselines.pipelayer import PipeLayerConfig, PipeLayerModel
from repro.baselines.retransformer import ReTransformerConfig, ReTransformerModel
from repro.baselines.softermax import SoftermaxConfig, SoftermaxUnit

__all__ = [
    "CMOSSoftmaxUnit",
    "CMOSSoftmaxConfig",
    "SoftermaxUnit",
    "SoftermaxConfig",
    "GPUModel",
    "GPUConfig",
    "GPULatencyBreakdown",
    "TITAN_RTX",
    "PipeLayerModel",
    "PipeLayerConfig",
    "ReTransformerModel",
    "ReTransformerConfig",
]
