"""E6 — Fig. 3: computing efficiency of GPU, PipeLayer, ReTransformer and STAR.

The paper reports STAR at 612.66 GOPs/s/W — 30.63x the Titan RTX, 4.32x
PipeLayer and 1.31x ReTransformer — for BERT-base at sequence length 128.
"""

from __future__ import annotations

from repro.analysis.efficiency import EfficiencyComparison
from repro.nn.bert import BertWorkload

import pytest

from conftest import record


@pytest.mark.smoke
def test_bench_fig3_efficiency_comparison(benchmark, paper_values):
    """Full four-design comparison on the BERT-base / seq-128 workload."""
    comparison = EfficiencyComparison(workload=BertWorkload(seq_len=128))

    results = benchmark(comparison.run)

    table = results.table
    record(
        benchmark,
        gops_per_watt={
            report.name: round(report.computing_efficiency_gops_per_watt, 2)
            for report in table.reports
        },
        star_gops_per_watt=round(results.star_efficiency, 2),
        gain_over_gpu=round(results.gain_over_gpu, 2),
        gain_over_pipelayer=round(results.gain_over_pipelayer, 2),
        gain_over_retransformer=round(results.gain_over_retransformer, 2),
        paper_star_gops_per_watt=paper_values["fig3_star_gops_per_watt"],
        paper_gains=(
            paper_values["fig3_gain_over_gpu"],
            paper_values["fig3_gain_over_pipelayer"],
            paper_values["fig3_gain_over_retransformer"],
        ),
    )

    # ordering of the bars in Fig. 3
    efficiencies = [r.computing_efficiency_gops_per_watt for r in table.reports]
    assert efficiencies == sorted(efficiencies)
    # magnitudes within the reproduction bands of DESIGN.md
    assert 450 < results.star_efficiency < 800
    assert results.gain_over_gpu > 20
    assert 3 < results.gain_over_pipelayer < 6
    assert 1.1 < results.gain_over_retransformer < 1.6


def test_bench_star_inference_latency(benchmark):
    """STAR end-to-end BERT-base inference latency at sequence length 128."""
    from repro.core.accelerator import STARAccelerator

    star = STARAccelerator()
    workload = BertWorkload(seq_len=128)

    latency = benchmark(star.inference_latency_s, workload)

    record(
        benchmark,
        latency_ms=round(latency * 1e3, 3),
        power_w=round(star.power_w(128), 3),
        area_mm2=round(star.area_mm2(), 2),
        throughput_gops=round(workload.total_ops() / latency / 1e9, 1),
    )
    assert latency > 0
