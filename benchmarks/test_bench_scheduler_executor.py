"""Event-driven scheduler throughput and scenario-diversity benchmarks.

The executor must stay cheap enough to run inside experiment sweeps: one
BERT-base seq-512 attention layer is 6144 rows x 3 stages of heap events.
The scenario benchmarks exercise what the closed-form model cannot
express — per-row jitter and unbalanced softmax-engine pools.
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.config import PipelineConfig
from repro.core.scheduler import PipelineExecutor, StageJitter
from repro.nn.bert import BertWorkload

from conftest import record


@pytest.mark.smoke
def test_bench_executor_bert_base_rows(benchmark):
    """Executing a full BERT-base seq-512 attention layer stays sub-second."""
    star = STARAccelerator(schedule="executed")
    workload = BertWorkload(seq_len=512)

    schedule = benchmark(star.executed_attention_schedule, workload)

    rows_per_s = schedule.num_rows / benchmark.stats["mean"]
    record(
        benchmark,
        rows=schedule.num_rows,
        simulated_rows_per_wall_second=round(rows_per_s),
        measured_latency_us=round(schedule.total_latency_s * 1e6, 2),
    )
    assert schedule.num_rows == 12 * 512
    assert benchmark.stats["mean"] < 1.0


def test_bench_executor_scenario_diversity(benchmark):
    """Jitter and unbalanced pools — scenarios the formulas cannot express."""
    config = PipelineConfig(stage_handoff_s=0.0)
    star = STARAccelerator()
    timing = star.native_attention_stage_timing(BertWorkload(seq_len=128))

    def scenarios():
        base = PipelineExecutor(config, streams=12, softmax_engines=8).execute_vector(timing)
        jittered = PipelineExecutor(
            config, streams=12, softmax_engines=8, jitter=StageJitter(sigma=0.3, seed=0)
        ).execute_vector(timing)
        unbalanced = PipelineExecutor(
            config,
            streams=12,
            softmax_engines=8,
            softmax_speedups=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 1.0),
        ).execute_vector(timing)
        return base, jittered, unbalanced

    base, jittered, unbalanced = benchmark(scenarios)

    record(
        benchmark,
        base_us=round(base.total_latency_s * 1e6, 2),
        jittered_us=round(jittered.total_latency_s * 1e6, 2),
        unbalanced_us=round(unbalanced.total_latency_s * 1e6, 2),
        unbalanced_engine_rows=list(unbalanced.engine_rows),
    )
    # service-time variance can only hurt a work-conserving pipeline
    assert jittered.total_latency_s > base.total_latency_s
    # faster engines drain more of the shared queue
    assert unbalanced.engine_rows[6] > unbalanced.engine_rows[0]
    assert sum(unbalanced.engine_rows) == timing.num_rows
