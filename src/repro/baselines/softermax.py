"""Softermax: the optimised CMOS softmax baseline of Table I.

Softermax (Stevens et al., 2021) is a hardware/software co-design that makes
the CMOS softmax cheap by (a) replacing ``e^x`` with ``2^x`` so the
exponential becomes an integer shift plus a small fractional correction,
(b) computing the running maximum online while the scores stream out of the
matrix-multiply array (no separate max pass over a buffered row), and
(c) using low-precision (8-bit) arithmetic throughout.

The paper's Table I places Softermax at 0.33x the area and 0.12x the power
of the conventional CMOS baseline; this model rebuilds those savings from
the component level: the expensive per-lane exponential units and full-width
dividers of the baseline are replaced with shifters, small adders and one
shared narrow divider, and the datapath width drops from 16 to 8 bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.components import (
    Adder,
    ComponentCost,
    Comparator,
    Divider,
    Register,
    SRAMBuffer,
    Subtractor,
)
from repro.circuits.energy import EnergyLedger
from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode

__all__ = ["SoftermaxConfig", "SoftermaxUnit"]


def _shifter_cost(bits: int, tech: TechnologyNode) -> ComponentCost:
    """Barrel shifter implementing ``2^x`` for the integer part of x."""
    if bits < 1:
        raise ValueError(f"shifter width must be >= 1 bit, got {bits}")
    stages = max(1, math.ceil(math.log2(bits)))
    return ComponentCost(
        name=f"{bits}-bit barrel shifter",
        area_um2=tech.scale_area_um2(2.2 * bits * stages),
        power_w=tech.scale_power_w(0.6e-6 * bits * stages),
        latency_s=1.0 * tech.cycle_time_s,
    )


@dataclass(frozen=True)
class SoftermaxConfig:
    """Sizing of the Softermax unit.

    Attributes
    ----------
    vector_length:
        Softmax row length (128 in Table I).
    data_bits:
        Datapath width; Softermax operates at low precision (10 bits here:
        8-bit inputs with two guard bits through the running accumulation).
    parallel_lanes:
        Elements processed concurrently; provisioned to match the
        fully-parallel baseline's row throughput (one lane per element of a
        128-long row).
    tech:
        CMOS technology node.
    """

    vector_length: int = 128
    data_bits: int = 10
    parallel_lanes: int = 128
    tech: TechnologyNode = DEFAULT_TECHNOLOGY

    def __post_init__(self) -> None:
        if self.vector_length < 2:
            raise ValueError(f"vector_length must be >= 2, got {self.vector_length}")
        if not 4 <= self.data_bits <= 16:
            raise ValueError(f"data_bits must be in [4, 16], got {self.data_bits}")
        if self.parallel_lanes < 1:
            raise ValueError(f"parallel_lanes must be >= 1, got {self.parallel_lanes}")

    @property
    def passes_per_row(self) -> int:
        """Streaming passes needed to cover one row."""
        return -(-self.vector_length // self.parallel_lanes)


class SoftermaxUnit:
    """Area / power / latency model of the Softermax softmax unit."""

    name = "Softermax"

    def __init__(self, config: SoftermaxConfig | None = None) -> None:
        self.config = config or SoftermaxConfig()
        cfg = self.config
        tech = cfg.tech
        # online max: one comparator + register per lane
        self._online_max = ComponentCost(
            name="online max",
            area_um2=cfg.parallel_lanes
            * (Comparator.cost(cfg.data_bits, tech).area_um2 + Register.cost(cfg.data_bits, tech).area_um2),
            power_w=cfg.parallel_lanes
            * (Comparator.cost(cfg.data_bits, tech).power_w + Register.cost(cfg.data_bits, tech).power_w),
            latency_s=tech.cycle_time_s,
        )
        self._subtractors = Subtractor.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._shifters = _shifter_cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        # small per-lane LUT for the fractional part of 2^x
        self._frac_luts = SRAMBuffer.cost(32 * cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._accumulators = Adder.cost(cfg.data_bits + 4, tech).scaled(cfg.parallel_lanes)
        # per-lane normalising dividers so normalisation keeps up with the lanes
        self._dividers = Divider.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._output_regs = Register.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._buffer = SRAMBuffer.cost(cfg.vector_length * cfg.data_bits, tech)
        self._blocks: list[ComponentCost] = [
            self._online_max,
            self._subtractors,
            self._shifters,
            self._frac_luts,
            self._accumulators,
            self._dividers,
            self._output_regs,
            self._buffer,
        ]

    # ------------------------------------------------------------------ #
    # static costs
    # ------------------------------------------------------------------ #
    @property
    def area_um2(self) -> float:
        """Total silicon area of the Softermax unit."""
        return sum(block.area_um2 for block in self._blocks)

    @property
    def area_mm2(self) -> float:
        """Total area in mm^2."""
        return self.area_um2 * 1e-6

    @property
    def power_w(self) -> float:
        """Peak dynamic power with every block active."""
        return sum(block.power_w for block in self._blocks)

    # ------------------------------------------------------------------ #
    # per-row execution
    # ------------------------------------------------------------------ #
    def row_latency_s(self) -> float:
        """Latency of one softmax row (streaming, overlapped with the MACs)."""
        cfg = self.config
        per_pass = (
            self._online_max.latency_s
            + self._subtractors.latency_s
            + self._shifters.latency_s
            + self._accumulators.latency_s
        )
        # each lane normalises its own element once the row sum is known
        return cfg.passes_per_row * (per_pass + self._dividers.latency_s)

    def row_energy_j(self) -> float:
        """Energy of one softmax row."""
        return self.row_ledger().total_energy_j

    def row_ledger(self) -> EnergyLedger:
        """Per-component energy/latency ledger for one softmax row."""
        cfg = self.config
        passes = cfg.passes_per_row
        ledger = EnergyLedger()
        ledger.record(
            "online max",
            energy_j=passes * self._online_max.energy_per_op_j,
            latency_s=passes * self._online_max.latency_s,
        )
        ledger.record(
            "subtractors",
            energy_j=passes * self._subtractors.energy_per_op_j,
            latency_s=passes * self._subtractors.latency_s,
        )
        ledger.record(
            "shifters (2^x)",
            energy_j=passes * self._shifters.energy_per_op_j,
            latency_s=passes * self._shifters.latency_s,
        )
        ledger.record(
            "fractional LUTs",
            energy_j=passes * self._frac_luts.energy_per_op_j,
            latency_s=0.0,
        )
        ledger.record(
            "accumulators",
            energy_j=passes * self._accumulators.energy_per_op_j,
            latency_s=passes * self._accumulators.latency_s,
        )
        ledger.record(
            "dividers",
            energy_j=passes * self._dividers.energy_per_op_j,
            latency_s=passes * self._dividers.latency_s,
        )
        ledger.record(
            "output registers / row buffer",
            energy_j=self._output_regs.energy_per_op_j + self._buffer.energy_per_op_j,
            latency_s=self._buffer.latency_s,
        )
        for block in self._blocks:
            ledger.record_area(block.name, block.area_um2)
        return ledger

    def throughput_rows_per_s(self) -> float:
        """Softmax rows completed per second at full utilisation."""
        return 1.0 / self.row_latency_s()
