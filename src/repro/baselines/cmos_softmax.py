"""Baseline CMOS softmax unit (the "1x" reference of the paper's Table I).

The baseline follows the conventional digital softmax datapath that attention
accelerators attach to their matrix-multiply arrays: a comparator tree finds
the row maximum, parallel subtractors compute ``x_i - x_max``, parallel
piecewise-linear exponential units evaluate ``e^{x_i - x_max}``, an adder
tree accumulates the denominator and an array of dividers normalises.  Every
block is sized for full floating-point-equivalent precision (16-bit fixed
point), which is exactly the over-provisioning STAR argues is unnecessary.

The model reports area, power and per-row latency through the shared
:class:`~repro.circuits.components.ComponentCost` tables so that the Table I
comparison (baseline vs Softermax vs STAR's RRAM engine) is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.components import (
    Adder,
    ComponentCost,
    Divider,
    ExponentialUnit,
    MaxComparatorTree,
    Register,
    SRAMBuffer,
    Subtractor,
)
from repro.circuits.energy import EnergyLedger
from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode

__all__ = ["CMOSSoftmaxConfig", "CMOSSoftmaxUnit"]


@dataclass(frozen=True)
class CMOSSoftmaxConfig:
    """Sizing of the baseline CMOS softmax unit.

    Attributes
    ----------
    vector_length:
        Length of one softmax row (the sequence length of the attention
        matrix); the paper's Table I uses 128.
    data_bits:
        Internal datapath width.  The baseline keeps 16 bits everywhere,
        emulating the full-precision units of conventional designs.
    parallel_lanes:
        Number of elements processed concurrently by the subtract / exp /
        divide stages.  The baseline provisions one lane per element of a
        128-long row, as the conventional fully-parallel design does.
    tech:
        CMOS technology node.
    """

    vector_length: int = 128
    data_bits: int = 16
    parallel_lanes: int = 128
    tech: TechnologyNode = DEFAULT_TECHNOLOGY

    def __post_init__(self) -> None:
        if self.vector_length < 2:
            raise ValueError(f"vector_length must be >= 2, got {self.vector_length}")
        if not 4 <= self.data_bits <= 32:
            raise ValueError(f"data_bits must be in [4, 32], got {self.data_bits}")
        if self.parallel_lanes < 1:
            raise ValueError(f"parallel_lanes must be >= 1, got {self.parallel_lanes}")

    @property
    def passes_per_row(self) -> int:
        """Sequential passes needed when lanes < vector_length."""
        return -(-self.vector_length // self.parallel_lanes)  # ceil division


class CMOSSoftmaxUnit:
    """Area / power / latency model of the conventional CMOS softmax."""

    name = "CMOS baseline softmax"

    def __init__(self, config: CMOSSoftmaxConfig | None = None) -> None:
        self.config = config or CMOSSoftmaxConfig()
        cfg = self.config
        tech = cfg.tech
        # static blocks
        self._max_tree = MaxComparatorTree.cost(cfg.vector_length, cfg.data_bits, tech)
        self._subtractors = Subtractor.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._exp_units = ExponentialUnit.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._adder_tree = Adder.cost(cfg.data_bits, tech).scaled(max(1, cfg.parallel_lanes - 1))
        self._dividers = Divider.cost(cfg.data_bits, tech).scaled(cfg.parallel_lanes)
        self._registers = Register.cost(cfg.data_bits, tech).scaled(2 * cfg.vector_length)
        self._buffer = SRAMBuffer.cost(2 * cfg.vector_length * cfg.data_bits, tech)
        self._blocks: list[ComponentCost] = [
            self._max_tree,
            self._subtractors,
            self._exp_units,
            self._adder_tree,
            self._dividers,
            self._registers,
            self._buffer,
        ]

    # ------------------------------------------------------------------ #
    # static costs
    # ------------------------------------------------------------------ #
    @property
    def area_um2(self) -> float:
        """Total silicon area of the softmax unit."""
        return sum(block.area_um2 for block in self._blocks)

    @property
    def area_mm2(self) -> float:
        """Total area in mm^2."""
        return self.area_um2 * 1e-6

    @property
    def power_w(self) -> float:
        """Peak dynamic power with every block active."""
        return sum(block.power_w for block in self._blocks)

    # ------------------------------------------------------------------ #
    # per-row execution
    # ------------------------------------------------------------------ #
    def row_latency_s(self) -> float:
        """Latency of one softmax row of ``vector_length`` elements.

        The stages are serial per pass: max tree -> subtract -> exp ->
        adder-tree reduction -> divide; with ``passes_per_row`` passes when
        the lanes cannot cover the full row at once.
        """
        cfg = self.config
        import math

        reduction_depth = max(1, math.ceil(math.log2(max(2, cfg.parallel_lanes))))
        per_pass = (
            self._subtractors.latency_s
            + self._exp_units.latency_s
            + self._adder_tree.latency_s * reduction_depth
            + self._dividers.latency_s
        )
        return self._max_tree.latency_s + cfg.passes_per_row * per_pass

    def row_energy_j(self) -> float:
        """Energy of one softmax row."""
        cfg = self.config
        ledger = self.row_ledger()
        return ledger.total_energy_j

    def row_ledger(self) -> EnergyLedger:
        """Per-component energy/latency ledger for one softmax row."""
        cfg = self.config
        ledger = EnergyLedger()
        passes = cfg.passes_per_row
        ledger.record(
            "max tree", energy_j=self._max_tree.energy_per_op_j, latency_s=self._max_tree.latency_s
        )
        ledger.record(
            "subtractors",
            energy_j=passes * self._subtractors.energy_per_op_j,
            latency_s=passes * self._subtractors.latency_s,
        )
        ledger.record(
            "exp units",
            energy_j=passes * self._exp_units.energy_per_op_j,
            latency_s=passes * self._exp_units.latency_s,
        )
        ledger.record(
            "adder tree",
            energy_j=passes * self._adder_tree.energy_per_op_j,
            latency_s=passes * self._adder_tree.latency_s,
        )
        ledger.record(
            "dividers",
            energy_j=passes * self._dividers.energy_per_op_j,
            latency_s=passes * self._dividers.latency_s,
        )
        ledger.record(
            "registers/buffer",
            energy_j=self._registers.energy_per_op_j + self._buffer.energy_per_op_j,
            latency_s=self._buffer.latency_s,
        )
        for block in self._blocks:
            ledger.record_area(block.name, block.area_um2)
        return ledger

    def throughput_rows_per_s(self) -> float:
        """Softmax rows completed per second at full utilisation."""
        return 1.0 / self.row_latency_s()
