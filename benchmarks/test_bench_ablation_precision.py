"""E8 (ablation) — softmax precision sweep: cost vs fidelity.

Sweeps the engine's fixed-point format around the paper's chosen 7/8/9-bit
points and reports the area/power/fidelity trade-off, plus the effect of
dropping the sign bit (the paper's area-saving trick) being numerically free.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ablation import AblationSuite
from repro.nn.functional import softmax as exact_softmax
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import CNEWS_PROFILE, AttentionScoreGenerator

from conftest import record

FORMATS = ((5, 1), (5, 2), (6, 2), (6, 3))


def test_bench_precision_sweep(benchmark):
    """Engine cost and output fidelity across fixed-point formats."""
    suite = AblationSuite()

    rows = benchmark(
        suite.precision_ablation, CNEWS_PROFILE, FORMATS, 32, 64
    )

    record(
        benchmark,
        sweep={
            f"{row.integer_bits}i+{row.frac_bits}f": {
                "area_um2": round(row.area_um2, 1),
                "power_mw": round(row.power_w * 1e3, 3),
                "mean_kl": round(row.mean_kl, 5),
            }
            for row in rows
        },
    )
    kls = [row.mean_kl for row in rows]
    # fidelity improves (KL falls) as precision grows
    assert kls[-1] <= kls[0]


def test_bench_sign_bit_removal_is_lossless(benchmark):
    """Dropping the sign of x_i - x_max (paper Section II) changes nothing numerically."""
    scores = AttentionScoreGenerator(CNEWS_PROFILE, seed=1).rows(64, 128)

    def unsigned_magnitude_softmax():
        # the engine computes d = x_max - x_i >= 0 and stores only |d|
        fixed = FixedPointSoftmax(CNEWS_FORMAT)
        return fixed(scores)

    probs = benchmark(unsigned_magnitude_softmax)

    exact = exact_softmax(scores)
    record(
        benchmark,
        max_abs_error=float(np.max(np.abs(probs - exact))),
        mean_abs_error=float(np.mean(np.abs(probs - exact))),
    )
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
    assert np.max(np.abs(probs - exact)) < 0.08
