"""Text reports for every experiment — the programmatic face of EXPERIMENTS.md.

Each ``report_*`` function regenerates one of the paper's tables or figures
— plus the beyond-the-paper serving reports (``e10`` healthy serving,
``e11`` fault-injected serving, ``e12`` SLO control plane, ``e13``
tiered-fidelity serving, ``e14`` topology-aware routing) — and returns it
as a formatted string;
:func:`run_experiment` dispatches by experiment id (``e1`` … ``e14``) and
:func:`run_all` concatenates everything.
The command-line entry point lives in :mod:`repro.experiments.__main__`:

.. code-block:: bash

    python -m repro.experiments          # all experiments
    python -m repro.experiments e4 e6    # selected experiments
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.ablation import AblationSuite
from repro.analysis.accuracy import AccuracyAnalyzer
from repro.analysis.bitwidth import BitwidthAnalyzer
from repro.analysis.breakdown import LatencyBreakdownAnalyzer
from repro.analysis.efficiency import EfficiencyComparison
from repro.baselines.cmos_softmax import CMOSSoftmaxUnit
from repro.baselines.softermax import SoftermaxUnit
from repro.core.cam_sub import CamSubCrossbar
from repro.core.config import SoftmaxEngineConfig
from repro.core.exponent import ExponentialUnit
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.bert import BertWorkload
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import CNEWS_PROFILE, DATASET_PROFILES, AttentionScoreGenerator

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]


def _header(title: str) -> str:
    rule = "=" * len(title)
    return f"{rule}\n{title}\n{rule}"


def report_e1_latency_breakdown() -> str:
    """E1 — softmax share of BERT-base GPU latency vs sequence length."""
    analyzer = LatencyBreakdownAnalyzer()
    lines = [_header("E1  Softmax share of BERT-base GPU latency (paper: 59.20% at L=512)")]
    lines.append(analyzer.format_table())
    lines.append(f"crossover length: {analyzer.crossover_length()}")
    return "\n".join(lines)


def report_e2_cam_sub() -> str:
    """E2 — Fig. 1 CAM/SUB crossbar behaviour and costs."""
    cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    scores = AttentionScoreGenerator(CNEWS_PROFILE, seed=0).rows(1, 128)[0]
    result = cam_sub.process(scores)
    lines = [_header("E2  CAM/SUB crossbar (Fig. 1)")]
    lines.append(f"inputs                  : 128 scores in [{scores.min():.2f}, {scores.max():.2f}]")
    lines.append(f"x_max found             : {result.max_value:+.2f} at CAM row {result.max_row}")
    lines.append(f"differences             : all >= 0, max {result.differences.max():.2f}")
    lines.append(f"row latency / energy    : {cam_sub.row_latency_s(128) * 1e6:.2f} us / "
                 f"{cam_sub.row_energy_j(128) * 1e9:.2f} nJ")
    lines.append(f"area                    : {cam_sub.area_um2():.0f} um^2")
    return "\n".join(lines)


def report_e3_exponential() -> str:
    """E3 — Fig. 2 exponential unit LUT contents and costs."""
    config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT)
    unit = ExponentialUnit(config)
    values = unit.lut_values
    step = int(round(1.0 / config.fmt.resolution))
    lines = [_header("E3  Exponential unit (Fig. 2), LUT rule round(e^x * 2^m) / 2^m, m=4")]
    lines.append(f"LUT[x=0]  = {values[0]:.4f}   (paper: 1)")
    lines.append(f"LUT[x=-1] = {values[step]:.4f}   (paper: 0.3679 -> 0.375 at m=4)")
    lines.append(f"LUT[x=-2] = {values[2 * step]:.4f}   (paper: 0.1353 -> 0.125 at m=4)")
    lines.append(f"non-zero LUT entries    : {int((values > 0).sum())} of {values.size}")
    lines.append(f"active counters         : {unit.counters.num_counters}")
    lines.append(f"row latency / energy    : {unit.row_latency_s(128) * 1e6:.2f} us / "
                 f"{unit.row_energy_j(128) * 1e9:.2f} nJ")
    lines.append(f"area                    : {unit.area_um2():.0f} um^2")
    return "\n".join(lines)


def report_e4_bitwidth() -> str:
    """E4 — Section II per-dataset bit-width table, verified on the engine.

    The derived format is cross-checked by running the *cycle-accurate*
    engine (batched backend) at full scale — 512 rows of the dataset's
    typical length — against the exact softmax.
    """
    analyzer = BitwidthAnalyzer()
    results = analyzer.analyze_all(DATASET_PROFILES)
    paper = {"CNEWS": "8 (6i+2f)", "MRPC": "9 (6i+3f)", "CoLA": "7 (5i+2f)"}
    accuracy = AccuracyAnalyzer(num_rows=512)
    lines = [_header("E4  Required softmax bit-width per dataset (paper Section II)")]
    lines.append(
        f"{'dataset':<8} {'range':>8} {'derived':>12} {'paper':>12} {'engine KL':>12}"
    )
    for result in results:
        derived = f"{result.total_bits} ({result.integer_bits}i+{result.frac_bits}f)"
        engine = AccuracyAnalyzer.engine_for_format(result.fmt)
        fidelity = accuracy.fidelity(engine, DATASET_PROFILES[result.dataset])
        lines.append(
            f"{result.dataset:<8} {result.observed_range:>8.2f} {derived:>12} "
            f"{paper[result.dataset]:>12} {fidelity.mean_kl:>12.2e}"
        )
    return "\n".join(lines)


def report_e5_table1() -> str:
    """E5 — Table I area/power comparison of the softmax designs."""
    baseline = CMOSSoftmaxUnit()
    softermax = SoftermaxUnit()
    star = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    lines = [_header("E5  Table I: softmax engine area & power (BERT-base, CNEWS, L=128)")]
    lines.append(f"{'design':<22} {'area (um^2)':>12} {'power (mW)':>12} {'area x':>8} {'power x':>8}")
    rows = [
        ("CMOS baseline", baseline.area_um2, baseline.power_w),
        ("Softermax", softermax.area_um2, softermax.power_w),
        ("STAR (8-bit, ours)", star.area_um2(), star.power_w(128)),
    ]
    for name, area, power in rows:
        lines.append(
            f"{name:<22} {area:>12.0f} {power * 1e3:>12.3f} "
            f"{area / baseline.area_um2:>8.3f} {power / baseline.power_w:>8.3f}"
        )
    lines.append("paper ratios: Softermax 0.33x / 0.12x, STAR 0.06x / 0.05x")
    return "\n".join(lines)


def report_e6_fig3() -> str:
    """E6 — Fig. 3 computing-efficiency comparison."""
    results = EfficiencyComparison(workload=BertWorkload(seq_len=128)).run()
    lines = [_header("E6  Fig. 3: computing efficiency (BERT-base, L=128)")]
    lines.append(results.table.format_table(reference="Titan RTX"))
    lines.append("")
    lines.append(f"STAR                    : {results.star_efficiency:.2f} GOPs/s/W (paper 612.66)")
    lines.append(f"gain over GPU           : {results.gain_over_gpu:.2f}x (paper 30.63x)")
    lines.append(f"gain over PipeLayer     : {results.gain_over_pipelayer:.2f}x (paper 4.32x)")
    lines.append(f"gain over ReTransformer : {results.gain_over_retransformer:.2f}x (paper 1.31x)")
    return "\n".join(lines)


def report_e7_pipeline_ablation() -> str:
    """E7 — vector- vs operand-grained pipeline ablation.

    Every point is both predicted by the closed-form pipeline model and
    *executed* by the event-driven scheduler with discrete head-streams and
    softmax engines; the deviation column cross-validates the two.
    """
    suite = AblationSuite()
    rows = suite.pipeline_ablation((128, 256, 512))
    lines = [_header("E7  Ablation: pipeline granularity (attention chain only)")]
    lines.append(
        f"{'seq_len':>8} {'vector (us)':>12} {'operand (us)':>13} {'speedup':>9} "
        f"{'exec.vector':>12} {'exec.speedup':>13} {'dev':>7}"
    )
    for row in rows:
        lines.append(
            f"{row.seq_len:>8d} {row.vector_latency_s * 1e6:>12.2f} "
            f"{row.operand_latency_s * 1e6:>13.2f} {row.speedup:>9.2f} "
            f"{row.executed_vector_latency_s * 1e6:>12.2f} "
            f"{row.executed_speedup:>13.2f} {row.speedup_deviation * 100:>6.2f}%"
        )
    executor = suite.accelerator().attention_executor(BertWorkload(seq_len=128))
    lines.append(
        f"executed = event-driven schedule over {executor.streams} head-streams "
        f"+ {executor.softmax_engines} softmax engines"
    )
    return "\n".join(lines)


def report_e8_precision_ablation() -> str:
    """E8 — softmax precision sweep ablation (engine at full scale)."""
    rows = AblationSuite().precision_ablation(CNEWS_PROFILE, num_rows=256, seq_len=256)
    lines = [_header("E8  Ablation: softmax engine precision sweep (CNEWS profile)")]
    lines.append(f"{'format':>10} {'area (um^2)':>12} {'power (mW)':>12} {'mean KL':>12}")
    for row in rows:
        label = f"{row.integer_bits}i+{row.frac_bits}f"
        lines.append(
            f"{label:>10} {row.area_um2:>12.0f} {row.power_w * 1e3:>12.3f} {row.mean_kl:>12.5f}"
        )
    return "\n".join(lines)


def report_e9_noise_ablation() -> str:
    """E9 — RRAM non-ideality ablation (engine at full scale)."""
    rows = AblationSuite().noise_ablation(CNEWS_PROFILE, CNEWS_FORMAT, num_rows=128, seq_len=256)
    lines = [_header("E9  Ablation: RRAM non-idealities vs softmax fidelity (8-bit engine)")]
    lines.append(f"{'corner':<12} {'prog sigma':>10} {'read sigma':>10} {'stuck':>7} {'mean KL':>10} {'max |err|':>10}")
    for row in rows:
        lines.append(
            f"{row.label:<12} {row.programming_sigma:>10.3f} {row.read_noise_sigma:>10.3f} "
            f"{row.stuck_fraction:>7.3f} {row.mean_kl:>10.5f} {row.max_abs_error:>10.5f}"
        )
    return "\n".join(lines)


def report_e10_serving() -> str:
    """E10 — request-level serving: batch amortisation, load sweep, energy.

    Simulates open-loop Poisson traffic against a 4-chip STAR fleet with
    dynamic batching under the batch-aware cost model (operand programming
    amortised per batch, double-buffered row streaming, inter-request tile
    parallelism), sweeps the batcher cap against the linear
    ``batch x single`` baseline, and cross-validates the single-chip
    no-batching limit against the M/D/1 Pollaczek–Khinchine mean wait.
    """
    from repro.analysis.serving import ServingAnalyzer
    from repro.serving import DynamicBatcher

    analyzer = ServingAnalyzer(
        num_chips=4, batcher=DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    )
    lines = [_header("E10  Request-level serving (BERT-base, L=128, 4-chip STAR fleet)")]
    lines.append(
        f"chip service time       : {analyzer.request_service_s() * 1e3:.3f} ms/request, "
        f"fleet capacity {analyzer.fleet_capacity_rps():.0f} req/s at batch 1"
    )
    lines.append("")
    lines.append("batch amortisation (streamed weights: programming once per batch,")
    lines.append("double-buffered streaming beyond the first request):")
    lines.append(analyzer.format_amortisation_table((1, 4, 16, 32)))
    lines.append("")
    lines.append("batcher-cap sweep at 80% of amortised batch-32 capacity,")
    lines.append("batch-aware pricing vs the linear batch x single baseline:")
    lines.append(analyzer.format_cap_table((1, 8, 32)))
    lines.append("")
    lines.append(analyzer.format_table())
    lines.append(
        "batching note: a dispatched batch programs each stationary operand "
        "once and streams every request's rows through it, so larger "
        "DynamicBatcher caps now raise throughput at bounded p99; energy "
        "per query includes idle/leakage power over the makespan."
    )
    return "\n".join(lines)


def report_e11_fault_serving() -> str:
    """E11 — fault-injected serving: graceful degradation under chip failures.

    Injects per-chip MTBF/MTTR failure/repair processes into the e10 fleet
    (repair = detection/drain plus the chip's full-model operand
    reprogramming cost, the physically priced maintenance event) and sweeps
    the steady-state capacity loss.  Every point runs twice on identical
    traffic and failure seeds: with deadline shedding / bounded queue /
    degraded batch cap, and with an unprotected queue — goodput and
    completion-conditional p99 of both arms make the graceful-degradation
    curve.
    """
    from repro.analysis.serving import FaultServingAnalyzer

    analyzer = FaultServingAnalyzer()
    lines = [
        _header(
            "E11  Fault-injected serving (BERT-base, L=128, 4-chip STAR fleet, "
            "deadline 250 ms)"
        )
    ]
    lines.append(analyzer.format_table())
    lines.append("")
    lines.append(
        "reading: 'shed' columns run deadline shedding + bounded queue + "
        "degraded batch cap; 'queue' columns run retries on an unprotected "
        "queue.  Shedding holds goodput near the fault-free baseline at "
        "bounded p99 while the unprotected queue's backlog and tail blow "
        "up; past the shedding design point (loss >> deadline headroom) "
        "degradation stops being graceful, which is the capacity-planning "
        "envelope this experiment maps."
    )
    return "\n".join(lines)


def report_e12_slo_serving() -> str:
    """E12 — the SLO-aware serving control plane, cross-validated.

    Three sections on a sleep-capable STAR fleet: an EDF-vs-FIFO load
    sweep on bursty on/off-MMPP traffic with two SLO classes (identical
    tagged streams, only the drain order differs); a closed-loop run of
    think-time clients pinned against the machine-repair M/M/1//N closed
    form; and a compressed diurnal day served with and without the
    hysteresis autoscaler, whose energy ledger separates what parking
    chips into non-volatile deep sleep saves from what traffic pins.
    """
    from repro.analysis.serving import SLOServingAnalyzer

    analyzer = SLOServingAnalyzer()
    lines = [
        _header(
            "E12  SLO-aware serving control plane (BERT-base, L=128, "
            "2-chip STAR fleet)"
        )
    ]
    lines.append(analyzer.format_table())
    lines.append("")
    lines.append(
        "reading: both sweep arms serve the same tagged burst trace, so "
        "the attainment gap is pure dispatch order — FIFO queues "
        "interactive requests through each burst's backlog while EDF "
        "lifts them past the loose-deadline batch class.  The autoscale "
        "line prices deep sleep with the RRAM non-volatility story: "
        "weights persist, so waking is a supply ramp plus re-bias, not a "
        "reprogram."
    )
    return "\n".join(lines)


def report_e13_tiered_serving() -> str:
    """E13 — tiered-fidelity serving: executed-schedule tails at fleet speed.

    Serves one seeded Poisson stream four times on the same 2-chip fleet:
    analytic-only pricing, then 5% / 25% / 100% of dispatches routed
    through cached executed-schedule templates
    (:mod:`repro.core.schedule_cache`) resampled with per-layer lognormal
    jitter.  The analytic arm cannot see pipeline-level variation at all;
    the sampled arms let the executed tail propagate into request-level
    p95/p99 at near-analytic cost (each template is one cold executed run,
    then a vectorized resample per dispatch).
    """
    from repro.analysis.serving import TieredServingAnalyzer

    analyzer = TieredServingAnalyzer()
    lines = [
        _header(
            "E13  Tiered-fidelity serving (BERT-base, L=256, 2-chip STAR "
            "fleet, jitter sigma=0.3)"
        )
    ]
    lines.append(analyzer.format_table())
    lines.append("")
    lines.append(
        "reading: all rows serve the identical request stream; only the "
        "Bernoulli fraction of dispatches priced on the executed tier "
        "grows.  'x base' is each run's p99 over the analytic-only row's "
        "— the executed schedules' jitter is bounded below by the "
        "jitter-free critical path, so the tail can only lengthen, and "
        "it does so monotonically with the sampled fraction.  'exec p99' "
        "isolates the executed-tier requests (small-sample noisy at 5%)."
    )
    return "\n".join(lines)


def report_e14_routing_serving() -> str:
    """E14 — topology-aware routing: cost-oracle queues on a mixed fleet.

    Serves one seeded, SLO-tagged Poisson stream (85% short interactive
    sequences, 15% long ones) five times on the same mixed fleet — one
    96-tile chip plus three 16-tile chips — once through the fleet-wide
    global queue and once per routing arm of
    :mod:`repro.serving.routing`.  The offered load sits beyond the
    length-blind policies' capacity but within the cost oracle's:
    shortest-expected-delay routing prices every candidate chip with the
    accelerator's batch-aware pricing, so long sequences go to the
    big-tile chip instead of padding mixed batches and parking on small
    chips, and work stealing keeps the fleet work-conserving on top.
    """
    from repro.analysis.serving import RoutingServingAnalyzer

    analyzer = RoutingServingAnalyzer()
    lines = [
        _header(
            "E14  Topology-aware routing (skewed L=64/512 trace, "
            "96+16x3-tile STAR fleet)"
        )
    ]
    lines.append(analyzer.format_table())
    lines.append("")
    lines.append(
        "reading: every row serves the identical tagged request stream; "
        "only the routing arm changes.  'x good' is goodput "
        "(deadline-meeting completions per second) over the global-FIFO "
        "baseline's.  The global queue and the length-blind routers pad "
        "mixed batches to 512 and park long sequences on 16-tile chips, "
        "so they saturate; the SED cost oracle segregates by length and "
        "sustains the load, and stealing adds work conservation on top "
        "(compare the two SED rows)."
    )
    return "\n".join(lines)


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "e1": report_e1_latency_breakdown,
    "e2": report_e2_cam_sub,
    "e3": report_e3_exponential,
    "e4": report_e4_bitwidth,
    "e5": report_e5_table1,
    "e6": report_e6_fig3,
    "e7": report_e7_pipeline_ablation,
    "e8": report_e8_precision_ablation,
    "e9": report_e9_noise_ablation,
    "e10": report_e10_serving,
    "e11": report_e11_fault_serving,
    "e12": report_e12_slo_serving,
    "e13": report_e13_tiered_serving,
    "e14": report_e14_routing_serving,
}


def run_experiment(experiment_id: str) -> str:
    """Regenerate one experiment's table/figure as text (id: ``e1`` … ``e14``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]()


def run_all(experiment_ids: list[str] | None = None) -> str:
    """Regenerate several experiments (all of them by default)."""
    ids = experiment_ids if experiment_ids else sorted(EXPERIMENTS)
    return "\n\n".join(run_experiment(experiment_id) for experiment_id in ids)
