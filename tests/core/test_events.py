"""Tests for the shared discrete-event primitives (repro.core.events)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.events import ARRIVE, FREE, TIMEOUT, EventLoop, ServerPool, StageJitter


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.schedule(3.0, ARRIVE, "c")
        loop.schedule(1.0, ARRIVE, "a")
        loop.schedule(2.0, ARRIVE, "b")
        popped = [loop.pop() for _ in range(3)]
        assert [p[0] for p in popped] == [1.0, 2.0, 3.0]
        assert [p[2][0] for p in popped] == ["a", "b", "c"]

    def test_kind_breaks_time_ties(self):
        loop = EventLoop()
        loop.schedule(1.0, TIMEOUT)
        loop.schedule(1.0, ARRIVE, "req")
        loop.schedule(1.0, FREE, 0)
        kinds = [loop.pop()[1] for _ in range(3)]
        assert kinds == [FREE, ARRIVE, TIMEOUT]

    def test_insertion_order_breaks_kind_ties(self):
        loop = EventLoop()
        for label in ("first", "second", "third"):
            loop.schedule(1.0, ARRIVE, label)
        labels = [loop.pop()[2][0] for _ in range(3)]
        assert labels == ["first", "second", "third"]

    def test_now_tracks_popped_time(self):
        loop = EventLoop()
        loop.schedule(2.5, FREE, 1)
        assert loop.now == 0.0
        loop.pop()
        assert loop.now == 2.5

    def test_len_and_bool(self):
        loop = EventLoop()
        assert not loop and len(loop) == 0
        loop.schedule(0.0, ARRIVE)
        assert loop and len(loop) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, ARRIVE)

    def test_payload_never_compared(self):
        # un-orderable payloads must not break tie-handling
        loop = EventLoop()
        loop.schedule(1.0, ARRIVE, {"a": 1})
        loop.schedule(1.0, ARRIVE, {"b": 2})
        assert loop.pop()[2][0] == {"a": 1}


class TestServerPool:
    def test_shared_pool_takes_lowest_idle(self):
        pool = ServerPool("chips", 3)
        assert pool.idle_server() == 0
        pool.acquire(0)
        assert pool.idle_server() == 1

    def test_keyed_pool_binds_to_key(self):
        pool = ServerPool("streams", 2, keyed=True)
        pool.acquire(1)
        assert pool.idle_server(0) == 0
        assert pool.idle_server(1) is None

    def test_acquire_busy_raises(self):
        pool = ServerPool("chips", 1)
        pool.acquire(0)
        with pytest.raises(RuntimeError):
            pool.acquire(0)

    def test_release_makes_idle(self):
        pool = ServerPool("chips", 1)
        pool.acquire(0)
        pool.release(0)
        assert pool.idle_server() == 0
        assert pool.served == [1]

    def test_fifo_queue_and_peek(self):
        pool = ServerPool("chips", 1)
        pool.enqueue(0, "a")
        pool.enqueue(0, "b")
        assert pool.peek(0) == "a"
        assert pool.pop(0) == "a"
        assert pool.pop(0) == "b"
        assert pool.pop(0) is None and pool.peek(0) is None

    def test_queue_peak_tracks_depth(self):
        pool = ServerPool("chips", 1)
        for item in range(3):
            pool.enqueue(0, item)
        pool.pop(0)
        pool.enqueue(0, 3)
        assert pool.queue_depth() == 3
        assert pool.queue_peak == 3

    def test_keyed_queues_are_separate(self):
        pool = ServerPool("streams", 2, keyed=True)
        pool.enqueue(pool.queue_of(0), "x")
        pool.enqueue(pool.queue_of(1), "y")
        assert pool.pop(0) == "x"
        assert pool.pop(1) == "y"
        assert pool.queue_peak == 2

    def test_speedups_divide_service_time(self):
        pool = ServerPool("chips", 2, speedups=(1.0, 4.0))
        assert pool.service_time(0, 8.0) == pytest.approx(8.0)
        assert pool.service_time(1, 8.0) == pytest.approx(2.0)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            ServerPool("chips", 2, speedups=(1.0,))
        with pytest.raises(ValueError):
            ServerPool("chips", 1, speedups=(0.0,))
        with pytest.raises(ValueError):
            ServerPool("chips", 0)

    def test_occupy_accumulates_busy_time(self):
        pool = ServerPool("chips", 2)
        pool.occupy(1.5)
        pool.occupy(0.5)
        assert pool.busy_s == pytest.approx(2.0)


class TestStageJitter:
    def test_zero_sigma_is_identity(self):
        factors = StageJitter(sigma=0.0).factors(10)
        assert np.array_equal(factors, np.ones((10, 3)))

    def test_seeded_and_positive(self):
        a = StageJitter(sigma=0.3, seed=5).factors(64, num_stages=2)
        b = StageJitter(sigma=0.3, seed=5).factors(64, num_stages=2)
        assert a.shape == (64, 2)
        assert np.array_equal(a, b)
        assert np.all(a > 0)

    def test_different_seeds_differ(self):
        a = StageJitter(sigma=0.3, seed=0).factors(16)
        b = StageJitter(sigma=0.3, seed=1).factors(16)
        assert not np.array_equal(a, b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            StageJitter(sigma=-0.1)
