"""Unit tests of the batch-aware cost model and its GEMM pricing split.

The hard guarantees of the refactor:

* ``batch_size = 1`` pricing under the default cost model is bit-identical
  to the pre-refactor seed formulas (hex-recorded goldens);
* the legacy cost model reproduces exact linear pricing at every batch;
* programming is charged exactly once per operand per batch under the
  streamed policy and never under the resident policy;
* the event-driven :class:`~repro.core.batch_cost.BatchGEMMExecutor`
  agrees with the closed forms (exactly when tasks divide the tiles).
"""

from __future__ import annotations

import math

import pytest

from repro.core.batch_cost import (
    BatchCostModel,
    BatchGEMMExecutor,
    DEFAULT_BATCH_COST,
)
from repro.core.config import MatMulEngineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine

#: Pre-refactor ``gemm_latency_s`` / ``gemm_energy_j`` values, recorded on
#: the seed tree as float hex (bit-exact).  The old formula was
#: ``ceil(tiles_for(shape) * m / parallel) * tile_vmm_latency_s``.
SEED_GEMM_LATENCY_HEX = {
    (128, 768, 768): "0x1.266b85a74cca3p-16",
    (128, 768, 3072): "0x1.266b85a74cca3p-14",
    (128, 3072, 768): "0x1.266b85a74cca3p-14",
    (1, 64, 128): "0x1.888f5cdf110d9p-22",
    (1, 128, 64): "0x1.888f5cdf110d9p-22",
    (77, 300, 515): "0x1.3ef47b753ddb0p-18",
}
SEED_GEMM_ENERGY_HEX = {
    (128, 768, 768): "0x1.e80976f9a28f6p-17",
    (128, 768, 3072): "0x1.e80976f9a28f6p-15",
    (128, 3072, 768): "0x1.e80976f9a28f6p-15",
    (1, 64, 128): "0x1.b1cf86333b2a2p-29",
    (1, 128, 64): "0x1.b1cf86333b2a2p-29",
    (77, 300, 515): "0x1.e94ed29e48fbcp-19",
}
SEED_GEMM_LATENCY_NODUP_HEX = {(128, 768, 768): "0x1.888f5cdf110d9p-15"}


def engine(num_tiles: int = 96, allow_duplication: bool = True) -> MatMulEngine:
    return MatMulEngine(
        MatMulEngineConfig(num_tiles=num_tiles, allow_duplication=allow_duplication)
    )


class TestBatchCostModel:
    def test_rejects_unknown_weight_policy(self):
        with pytest.raises(ValueError):
            BatchCostModel(weight_policy="cached")

    def test_presets(self):
        assert not DEFAULT_BATCH_COST.charges_programming
        assert DEFAULT_BATCH_COST.double_buffering
        assert BatchCostModel.streamed().charges_programming
        legacy = BatchCostModel.legacy()
        assert not legacy.charges_programming and not legacy.double_buffering


class TestBatchOneBitIdentity:
    @pytest.mark.parametrize("dims", sorted(SEED_GEMM_LATENCY_HEX))
    def test_default_latency_matches_seed(self, dims):
        shape = GEMMShape(*dims)
        assert engine().gemm_latency_s(shape).hex() == SEED_GEMM_LATENCY_HEX[dims]

    @pytest.mark.parametrize("dims", sorted(SEED_GEMM_ENERGY_HEX))
    def test_default_energy_matches_seed(self, dims):
        shape = GEMMShape(*dims)
        assert engine().gemm_energy_j(shape).hex() == SEED_GEMM_ENERGY_HEX[dims]

    def test_no_duplication_latency_matches_seed(self):
        shape = GEMMShape(128, 768, 768)
        value = engine(allow_duplication=False).gemm_latency_s(shape)
        assert value.hex() == SEED_GEMM_LATENCY_NODUP_HEX[(128, 768, 768)]

    def test_every_cost_model_is_identical_at_batch_one_without_programming(self):
        shape = GEMMShape(64, 300, 200)
        eng = engine()
        base = eng.gemm_streaming_latency_s(shape, batch_size=1)
        for model in (DEFAULT_BATCH_COST, BatchCostModel.streamed(), BatchCostModel.legacy()):
            assert eng.gemm_streaming_latency_s(shape, 1, model) == base


class TestLegacyLinearity:
    def test_legacy_latency_is_exactly_linear_in_waves(self):
        eng = engine()
        shape = GEMMShape(m=128, k=768, n=768)
        legacy = BatchCostModel.legacy()
        single_waves = math.ceil(36 * 128 / 96)
        for batch in (1, 3, 8, 32):
            waves = math.ceil(36 * 128 * batch / 96)
            assert eng.gemm_latency_s(shape, batch_size=batch, cost_model=legacy) == (
                waves * eng.tile_vmm_latency_s()
            )
            assert waves == batch * single_waves  # divisible shape: exactly linear


class TestProgrammingAmortisation:
    def test_streamed_charges_programming_exactly_once(self):
        eng = engine()
        shape = GEMMShape(m=16, k=768, n=768)
        for batch in (1, 4, 32):
            cost = eng.gemm_batch_cost(shape, batch, BatchCostModel.streamed())
            assert cost.programming_energy_j == eng.programming_energy_j(shape)
            assert cost.programming_latency_s == eng.programming_latency_s(shape)

    def test_resident_charges_no_programming(self):
        eng = engine()
        cost = eng.gemm_batch_cost(GEMMShape(16, 768, 768), 8, DEFAULT_BATCH_COST)
        assert cost.programming_energy_j == 0.0
        assert cost.programming_latency_s == 0.0

    def test_cost_split_sums_and_ratios(self):
        eng = engine()
        cost = eng.gemm_batch_cost(GEMMShape(32, 768, 768), 8, BatchCostModel.streamed())
        assert cost.latency_s == cost.programming_latency_s + cost.streaming_latency_s
        assert cost.energy_j == cost.programming_energy_j + cost.streaming_energy_j
        assert cost.latency_per_request_s == pytest.approx(cost.latency_s / 8)
        assert cost.linear_latency_s == pytest.approx(8 * cost.single_latency_s)
        assert cost.amortisation < 1.0


class TestDoubleBuffering:
    def test_overlapped_vmm_never_slower_and_faster_here(self):
        eng = engine()
        assert eng.tile_vmm_overlapped_latency_s() < eng.tile_vmm_latency_s()

    def test_later_requests_stream_at_overlapped_rate(self):
        eng = engine()
        shape = GEMMShape(m=128, k=768, n=768)  # 36 tiles, 96 | 36*128
        waves = math.ceil(36 * 128 / 96)
        for batch in (2, 5):
            expected = waves * eng.tile_vmm_latency_s() + (
                (batch - 1) * waves
            ) * eng.tile_vmm_overlapped_latency_s()
            assert eng.gemm_streaming_latency_s(shape, batch) == pytest.approx(
                expected, rel=1e-12
            )

    def test_disabled_double_buffering_streams_serialized(self):
        eng = engine()
        shape = GEMMShape(m=64, k=256, n=256)
        model = BatchCostModel(double_buffering=False)
        for batch in (1, 4):
            assert eng.gemm_streaming_latency_s(shape, batch, model) == pytest.approx(
                math.ceil(4 * 64 * batch / 96) * eng.tile_vmm_latency_s()
            )


class TestBatchGEMMExecutor:
    def test_exact_against_closed_form_when_tasks_divide_tiles(self):
        eng = engine()
        shape = GEMMShape(m=128, k=768, n=768)  # 36*128 tasks over 96 tiles
        for model in (DEFAULT_BATCH_COST, BatchCostModel.streamed(), BatchCostModel.legacy()):
            executor = BatchGEMMExecutor(eng, model)
            for batch in (1, 2, 8):
                executed = executor.execute(shape, batch_size=batch)
                assert executed.total_latency_s == pytest.approx(
                    eng.gemm_latency_s(shape, batch_size=batch, cost_model=model),
                    rel=1e-12,
                )

    def test_within_one_wave_on_ragged_shapes(self):
        eng = engine()
        shape = GEMMShape(m=77, k=300, n=515)  # tasks do not divide the tiles
        executor = BatchGEMMExecutor(eng)
        for batch in (1, 3, 7):
            executed = executor.execute(shape, batch_size=batch)
            analytic = eng.gemm_latency_s(shape, batch_size=batch)
            assert abs(executed.total_latency_s - analytic) <= eng.tile_vmm_latency_s()

    def test_busy_time_and_utilization(self):
        eng = engine()
        executed = BatchGEMMExecutor(eng).execute(GEMMShape(128, 768, 768), batch_size=2)
        assert executed.num_tasks == 2 * 36 * 128
        assert 0.0 < executed.utilization <= 1.0

    def test_streamed_prologue_delays_every_tile(self):
        eng = engine()
        shape = GEMMShape(m=8, k=128, n=128)
        resident = BatchGEMMExecutor(eng, DEFAULT_BATCH_COST).execute(shape)
        streamed = BatchGEMMExecutor(eng, BatchCostModel.streamed()).execute(shape)
        assert streamed.streaming_makespan_s == resident.streaming_makespan_s
        assert streamed.total_latency_s == pytest.approx(
            resident.total_latency_s + eng.programming_latency_s(shape)
        )

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            BatchGEMMExecutor(engine()).execute(GEMMShape(1, 1, 1), batch_size=0)
