"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and attaches the reproduced numbers to
``benchmark.extra_info`` so they appear in the pytest-benchmark report next
to the timing data.
"""

from __future__ import annotations

import time

import pytest


def record(benchmark, **values) -> None:
    """Attach reproduced experiment values to the benchmark report."""
    for key, value in values.items():
        benchmark.extra_info[key] = value


def best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture
def paper_values() -> dict[str, float]:
    """The headline numbers the paper reports, for side-by-side comparison."""
    return {
        "softmax_share_at_512": 0.5920,
        "table1_star_area_ratio": 0.06,
        "table1_star_power_ratio": 0.05,
        "table1_softermax_area_ratio": 0.33,
        "table1_softermax_power_ratio": 0.12,
        "fig3_star_gops_per_watt": 612.66,
        "fig3_gain_over_gpu": 30.63,
        "fig3_gain_over_pipelayer": 4.32,
        "fig3_gain_over_retransformer": 1.31,
        "bits_cnews": 8,
        "bits_mrpc": 9,
        "bits_cola": 7,
    }
