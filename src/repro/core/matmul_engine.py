"""STAR's MatMul engine: ReTransformer-style RRAM crossbar GEMM tiles.

The MatMul engine "follows the design in ReTransformer" (Section II of the
paper): weights (or, for the attention score product, the dynamically
written K / V operands) are mapped to 128 x 128 crossbar tiles, inputs are
streamed bit-serially through 1-bit wordline DACs, and 5-bit ADCs read the
bitline sums.

The class provides both

* a *functional* path — :meth:`program_operand` / :meth:`matmul` /
  :meth:`matvec_tile` — built on
  :class:`repro.rram.crossbar.AnalogCrossbar`, used by the NN compute
  backends (:class:`repro.nn.backend.AnalogBackend`), the examples and the
  crossbar-fidelity tests, and
* an *analytical cost* path — :meth:`gemm_latency_s`, :meth:`gemm_energy_j`,
  :meth:`row_latency_s` — used by the pipeline model and the Fig. 3
  efficiency comparison, where simulating every analog access would be
  pointlessly slow.

The functional path is weight-stationary: :meth:`program_operand` writes a
``K x N`` operand into a persistent bank of crossbar tiles **once** and
returns a :class:`ProgrammedOperand`; :meth:`matmul` then streams every row
of the activation matrix through the bank with one batched VMM per tile
(:meth:`~repro.rram.crossbar.AnalogCrossbar.matvec_batch`).  All tiles
share the engine-level :attr:`MatMulEngine.access_stats` counters, so
programming and read accesses accumulate across the engine's lifetime
instead of being discarded per call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.core.batch_cost import DEFAULT_BATCH_COST
from repro.core.config import MatMulEngineConfig
from repro.rram.converters import ADC, DAC
from repro.rram.crossbar import AnalogCrossbar, CrossbarAccessStats, CrossbarConfig
from repro.rram.device import RRAMDeviceConfig
from repro.utils.validation import require_positive

if TYPE_CHECKING:
    from repro.core.batch_cost import BatchCostModel, BatchGEMMCost

__all__ = ["GEMMShape", "ProgrammedOperand", "MatMulEngine"]


@dataclass(frozen=True)
class GEMMShape:
    """Dimensions of one GEMM: ``(M x K) @ (K x N)``."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.k < 1 or self.n < 1:
            raise ValueError(f"GEMM dimensions must be positive, got {self}")

    @property
    def operations(self) -> int:
        """Primitive operations (MAC = 2 ops)."""
        return 2 * self.m * self.k * self.n


@dataclass(frozen=True)
class _OperandTile:
    """One crossbar tile of a programmed operand and its placement."""

    k0: int
    k1: int
    n0: int
    n1: int
    crossbar: AnalogCrossbar
    column_sums: np.ndarray  # per-column sums of the logical block (offset correction)


class ProgrammedOperand:
    """A stationary ``K x N`` operand resident in a bank of crossbar tiles.

    Produced by :meth:`MatMulEngine.program_operand`; each
    ``crossbar_rows x crossbar_cols`` block of the operand occupies one
    persistent :class:`~repro.rram.crossbar.AnalogCrossbar`.  Programming
    happens exactly once — reusing the operand across many
    :meth:`MatMulEngine.matmul` calls models the weight-stationary dataflow
    of ReTransformer/STAR, and costs no further programming pulses.
    """

    def __init__(self, shape: tuple[int, int], tiles: list[_OperandTile]) -> None:
        self.shape = shape
        self._tiles = tiles

    @property
    def num_tiles(self) -> int:
        """Number of crossbar tiles the operand occupies."""
        return len(self._tiles)

    @property
    def tiles(self) -> list[_OperandTile]:
        """The operand's tiles with their ``(k, n)`` placement."""
        return list(self._tiles)


class MatMulEngine:
    """A bank of RRAM crossbar tiles executing GEMMs."""

    name = "STAR MatMul engine"

    def __init__(self, config: MatMulEngineConfig | None = None) -> None:
        self.config = config or MatMulEngineConfig()
        cfg = self.config
        self._tile_config = CrossbarConfig(
            rows=cfg.crossbar_rows,
            cols=cfg.crossbar_cols,
            device=RRAMDeviceConfig(bits_per_cell=cfg.bits_per_cell),
            adc_bits=cfg.adc_bits,
            dac_bits=cfg.dac_bits,
            input_bits=cfg.input_bits,
            noise=cfg.noise,
            differential=True,
        )
        self.access_stats = CrossbarAccessStats()
        self._reference_tile = AnalogCrossbar(self._tile_config)
        self._area_model = CrossbarAreaModel()
        self._adc = ADC(bits=cfg.adc_bits)
        self._dac = DAC(bits=cfg.dac_bits)
        self._tiles_created = 0

    # ------------------------------------------------------------------ #
    # functional path (NN backends, demos and tests)
    # ------------------------------------------------------------------ #
    def new_tile(self) -> AnalogCrossbar:
        """A freshly constructed crossbar tile recording into this engine's stats.

        Each tile receives its own noise seed (base seed + tile index), so
        device noise is independent across the arrays of one engine —
        identically-seeded tiles would draw perfectly correlated deviates
        and bias accuracy-under-noise sweeps.  Tile creation stays
        deterministic for a given engine construction order.
        """
        tile_config = self._tile_config
        if not tile_config.noise.is_ideal:
            noise = replace(tile_config.noise, seed=tile_config.noise.seed + self._tiles_created)
            tile_config = replace(tile_config, noise=noise)
        self._tiles_created += 1
        return AnalogCrossbar(tile_config, stats=self.access_stats)

    def matvec_tile(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Analog ``vector @ matrix`` on one tile (shapes must fit the tile)."""
        tile = self.new_tile()
        tile.program(matrix)
        return tile.matvec(vector)

    def program_operand(self, b: np.ndarray) -> ProgrammedOperand:
        """Write a stationary ``K x N`` operand into a persistent tile bank.

        Each ``crossbar_rows x crossbar_cols`` block of ``b`` (zero-padded
        at the ragged edges) is programmed into its own crossbar tile, once.
        Programming pulses are charged to :attr:`access_stats`.  The
        returned :class:`ProgrammedOperand` can be passed to :meth:`matmul`
        any number of times without re-programming — the weight-stationary
        reuse that PIM accelerators exist for.
        """
        matrix = np.asarray(b, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"operand must be a 2-D matrix, got shape {matrix.shape}")
        rows, cols = self.config.crossbar_rows, self.config.crossbar_cols
        k, n = matrix.shape
        tiles: list[_OperandTile] = []
        for k0 in range(0, k, rows):
            k1 = min(k0 + rows, k)
            for n0 in range(0, n, cols):
                n1 = min(n0 + cols, n)
                block = np.zeros((rows, cols))
                block[: k1 - k0, : n1 - n0] = matrix[k0:k1, n0:n1]
                tile = self.new_tile()
                tile.program(block)
                tiles.append(
                    _OperandTile(
                        k0=k0,
                        k1=k1,
                        n0=n0,
                        n1=n1,
                        crossbar=tile,
                        column_sums=block.sum(axis=0),
                    )
                )
        return ProgrammedOperand(shape=(k, n), tiles=tiles)

    def matmul(self, a: np.ndarray, b: np.ndarray | ProgrammedOperand) -> np.ndarray:
        """Analog ``a @ b`` streaming all rows of ``a`` through the tile bank.

        ``b`` is either a raw matrix — programmed into a fresh tile bank for
        this one call (the dynamic-operand case, e.g. attention's ``QK^T``)
        — or a :class:`ProgrammedOperand` from :meth:`program_operand`,
        reused without any re-programming (the weight-stationary case).

        Every row block streams through
        :meth:`~repro.rram.crossbar.AnalogCrossbar.matvec_batch` in one
        batched VMM per tile: wordlines need non-negative inputs, so each
        row is shifted by its per-row minimum and the whole correction is
        applied as one rank-1 update — the per-row Python loop of the
        original implementation collapses into vectorized NumPy.
        """
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise ValueError("matmul expects a 2-D activation matrix")
        if isinstance(b, ProgrammedOperand):
            operand = b
        else:
            raw = np.asarray(b, dtype=np.float64)
            if raw.ndim != 2:
                raise ValueError("matmul expects two 2-D matrices")
            if a.shape[1] != raw.shape[0]:
                # reject before programming so failed calls charge no writes
                raise ValueError(f"inner dimensions differ: {a.shape} @ {raw.shape}")
            operand = self.program_operand(raw)
        k, n = operand.shape
        if a.shape[1] != k:
            raise ValueError(f"inner dimensions differ: {a.shape} @ {operand.shape}")
        rows = self.config.crossbar_rows
        m = a.shape[0]
        out = np.zeros((m, n), dtype=np.float64)
        for tile in operand.tiles:
            segment = a[:, tile.k0 : tile.k1]
            offsets = np.min(segment, axis=1)  # wordlines need >= 0 inputs
            padded = np.zeros((m, rows))
            padded[:, : tile.k1 - tile.k0] = segment - offsets[:, None]
            result = tile.crossbar.matvec_batch(padded)
            correction = offsets[:, None] * tile.column_sums[None, :]
            width = tile.n1 - tile.n0
            out[:, tile.n0 : tile.n1] += result[:, :width] + correction[:, :width]
        return out

    # ------------------------------------------------------------------ #
    # stats-derived costs (functional path accounting)
    # ------------------------------------------------------------------ #
    def energy_j_of(self, stats: CrossbarAccessStats) -> float:
        """Energy of the accesses recorded in ``stats``.

        Derived analytically from the counters — cell reads, converter
        activity, sample-and-hold and programming pulses — the same
        decoupled accounting the softmax engine uses: the functional path
        counts accesses, cost never rides the data path.
        """
        device = self._reference_tile.device
        g_mid = 0.5 * (device.config.g_min_s + device.config.g_max_s)
        per_cell_read = float(device.read_energy_j(g_mid))
        sample_hold = self._reference_tile.sample_hold
        return (
            stats.cell_reads * per_cell_read
            + stats.dac_conversions * self._dac.energy_per_conversion_j
            + stats.adc_conversions
            * (self._adc.energy_per_conversion_j + sample_hold.energy_per_sample_j)
            + stats.programming_pulses * device.write_energy_j()
        )

    def latency_s_of(self, stats: CrossbarAccessStats) -> float:
        """Serialized latency of the accesses recorded in ``stats``.

        Array activations are charged one bit-serial cycle each and
        programming pulses are charged row-parallel writes, as if a single
        tile performed all the work back to back; tile-level parallelism is
        the analytical path's concern (:meth:`gemm_latency_s`).
        """
        cfg = self._tile_config
        read_s = stats.array_activations * self._reference_tile.cycle_latency_s()
        write_s = (
            stats.programming_pulses / cfg.physical_cols
        ) * self._reference_tile.device.write_latency_s()
        return read_s + write_s

    # ------------------------------------------------------------------ #
    # per-tile costs
    # ------------------------------------------------------------------ #
    def tile_vmm_latency_s(self) -> float:
        """Latency of one tile VMM (all bit-serial input cycles, serialized)."""
        return self._reference_tile.vmm_latency_s()

    def tile_vmm_overlapped_latency_s(self) -> float:
        """Steady-state tile VMM latency with double-buffered input staging.

        The DAC drive / settle / S&H portion of each bit-serial cycle hides
        under the previous cycle's shared-ADC readout
        (:meth:`~repro.rram.crossbar.AnalogCrossbar.overlapped_vmm_latency_s`);
        the batch cost model charges this rate for rows whose inputs are
        already buffered — rows of requests beyond the first in a batch.
        """
        return self._reference_tile.overlapped_vmm_latency_s()

    def tile_vmm_energy_j(self) -> float:
        """Energy of one tile VMM."""
        return self._reference_tile.vmm_energy_j()

    def tile_ops(self) -> int:
        """Primitive operations completed by one tile VMM (MAC = 2 ops)."""
        return 2 * self.config.crossbar_rows * self.config.crossbar_cols

    def tile_area_um2(self) -> float:
        """Area of one tile including DACs, S&H and shared ADCs."""
        cfg = self.config
        return self._area_model.vmm_crossbar_area_um2(
            cfg.crossbar_rows,
            cfg.crossbar_cols * 2,  # differential column pairs
            adc=self._adc,
            dac=self._dac,
        )

    def tile_power_w(self) -> float:
        """Average power of one tile running VMMs back to back."""
        return self.tile_vmm_energy_j() / self.tile_vmm_latency_s()

    # ------------------------------------------------------------------ #
    # engine-level costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total area of all tiles."""
        return self.config.num_tiles * self.tile_area_um2()

    def area_mm2(self) -> float:
        """Total area of all tiles in mm^2."""
        return self.area_um2() * 1e-6

    def peak_power_w(self) -> float:
        """Power with every tile active."""
        return self.config.num_tiles * self.tile_power_w()

    def peak_throughput_ops(self) -> float:
        """Operations per second with every tile active."""
        return self.config.num_tiles * self.tile_ops() / self.tile_vmm_latency_s()

    def _tiles_for(self, shape: GEMMShape) -> int:
        cfg = self.config
        return math.ceil(shape.k / cfg.crossbar_rows) * math.ceil(shape.n / cfg.crossbar_cols)

    def gemm_tile_vmms(self, shape: GEMMShape) -> int:
        """Number of tile VMM activations needed for one GEMM."""
        return self._tiles_for(shape) * shape.m

    def gemm_parallel_tiles(self, shape: GEMMShape, tiles_available: int | None = None) -> int:
        """Tiles working the GEMM in parallel.

        With ``allow_duplication`` the stationary operand is replicated
        across otherwise-idle tiles so different input rows proceed in
        parallel; otherwise parallelism is capped by the number of distinct
        tiles the operand occupies.
        """
        tiles = tiles_available if tiles_available is not None else self.config.num_tiles
        require_positive(tiles, "tiles_available")
        if self.config.allow_duplication:
            return tiles
        return min(tiles, self._tiles_for(shape))

    def gemm_streaming_latency_s(
        self,
        shape: GEMMShape,
        batch_size: int = 1,
        cost_model: "BatchCostModel | None" = None,
        tiles_available: int | None = None,
    ) -> float:
        """Latency of streaming ``batch_size * shape.m`` rows through the bank.

        The per-request ``shape`` streams its rows once per batched request
        through one programmed operand.  The first request's row waves are
        charged the serialized tile-VMM latency — keeping ``batch_size = 1``
        bit-identical to the pre-batching formula — and, when the cost
        model double-buffers, every later request's waves stream at the
        overlapped rate (its rows are independent of the row in flight, so
        input staging hides under the previous readout).
        """
        require_positive(batch_size, "batch_size")
        model = cost_model or DEFAULT_BATCH_COST
        parallel = self.gemm_parallel_tiles(shape, tiles_available)
        vmms_per_request = self.gemm_tile_vmms(shape)
        first_waves = math.ceil(vmms_per_request / parallel)
        total_waves = math.ceil(vmms_per_request * batch_size / parallel)
        full = self.tile_vmm_latency_s()
        if not model.double_buffering:
            return total_waves * full
        return first_waves * full + (total_waves - first_waves) * self.tile_vmm_overlapped_latency_s()

    def gemm_latency_s(
        self,
        shape: GEMMShape,
        tiles_available: int | None = None,
        batch_size: int = 1,
        cost_model: "BatchCostModel | None" = None,
    ) -> float:
        """Latency of one batched GEMM (operand programming + row streaming).

        With the default :data:`~repro.core.batch_cost.DEFAULT_BATCH_COST`
        and ``batch_size = 1`` this is exactly the pre-batching price:
        resident weights charge no programming and a single request streams
        entirely at the serialized rate.  Larger batches amortise whatever
        the cost model lets them (see :meth:`gemm_batch_cost` for the
        split).
        """
        model = cost_model or DEFAULT_BATCH_COST
        programming = self.programming_latency_s(shape) if model.charges_programming else 0.0
        return programming + self.gemm_streaming_latency_s(
            shape, batch_size=batch_size, cost_model=model, tiles_available=tiles_available
        )

    def gemm_energy_j(
        self,
        shape: GEMMShape,
        batch_size: int = 1,
        cost_model: "BatchCostModel | None" = None,
    ) -> float:
        """Energy of one batched GEMM.

        Streaming energy is strictly per-row (overlap removes idle time,
        not conversions), so it scales with ``batch_size``; programming
        energy — when the cost model charges it — is paid exactly once per
        operand per batch.
        """
        require_positive(batch_size, "batch_size")
        model = cost_model or DEFAULT_BATCH_COST
        streaming = batch_size * self.gemm_tile_vmms(shape) * self.tile_vmm_energy_j()
        programming = self.programming_energy_j(shape) if model.charges_programming else 0.0
        return programming + streaming

    def gemm_batch_cost(
        self,
        shape: GEMMShape,
        batch_size: int = 1,
        cost_model: "BatchCostModel | None" = None,
        tiles_available: int | None = None,
    ) -> "BatchGEMMCost":
        """The full one-time vs per-row price split of one batched GEMM."""
        from repro.core.batch_cost import BatchGEMMCost

        require_positive(batch_size, "batch_size")
        model = cost_model or DEFAULT_BATCH_COST
        programming_latency = (
            self.programming_latency_s(shape) if model.charges_programming else 0.0
        )
        programming_energy = (
            self.programming_energy_j(shape) if model.charges_programming else 0.0
        )
        streaming_latency = self.gemm_streaming_latency_s(
            shape, batch_size=batch_size, cost_model=model, tiles_available=tiles_available
        )
        single_streaming = self.gemm_streaming_latency_s(
            shape, batch_size=1, cost_model=model, tiles_available=tiles_available
        )
        per_request_energy = self.gemm_tile_vmms(shape) * self.tile_vmm_energy_j()
        return BatchGEMMCost(
            shape=shape,
            batch_size=batch_size,
            programming_latency_s=programming_latency,
            programming_energy_j=programming_energy,
            streaming_latency_s=streaming_latency,
            streaming_energy_j=batch_size * per_request_energy,
            single_latency_s=programming_latency + single_streaming,
            single_energy_j=programming_energy + per_request_energy,
        )

    def row_latency_s(self, shape: GEMMShape) -> float:
        """Latency of producing one output row of a GEMM (pipeline granule).

        All tiles holding the stationary operand work in parallel on the same
        input row, so a row takes one tile-VMM latency regardless of ``n``
        (as long as enough tiles are provisioned).
        """
        tiles_needed = self._tiles_for(shape)
        waves = math.ceil(tiles_needed / self.config.num_tiles)
        return waves * self.tile_vmm_latency_s()

    def programming_energy_j(self, shape: GEMMShape) -> float:
        """Energy of writing the stationary ``K x N`` operand into the tiles.

        Only accelerators that rewrite dynamic operands (e.g. PipeLayer
        executing attention) pay this per inference; ReTransformer and STAR
        avoid it through matrix decomposition, but the figure is exposed for
        the ablation benchmarks.
        """
        cells = shape.k * shape.n * 2  # differential pairs
        return cells * self._reference_tile.device.config.write_energy_j

    def programming_latency_s(self, shape: GEMMShape) -> float:
        """Latency of writing the stationary operand (row-parallel writes)."""
        rows_to_write = math.ceil(shape.k / self.config.crossbar_rows) * self.config.crossbar_rows
        return rows_to_write * self._reference_tile.device.config.write_pulse_s
