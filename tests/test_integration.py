"""End-to-end integration tests spanning multiple subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MatMulEngine,
    MatMulEngineConfig,
    RRAMSoftmaxEngine,
    SoftmaxEngineConfig,
    STARAccelerator,
)
from repro.nn.attention import MultiHeadAttention
from repro.nn.bert import BertConfig, BertEncoderModel, BertWorkload
from repro.nn.functional import softmax as exact_softmax
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import AttentionScoreGenerator, CNEWS_PROFILE, ClassificationTask


class TestAttentionWithRRAMSoftmax:
    """The RRAM softmax engine plugged directly into a NumPy attention layer."""

    def test_attention_output_close_to_exact(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        exact_attention = MultiHeadAttention(hidden=32, num_heads=4, rng=np.random.default_rng(0))
        rram_attention = MultiHeadAttention(
            hidden=32, num_heads=4, rng=np.random.default_rng(0), softmax_fn=engine
        )
        x = rng.normal(size=(1, 6, 32)) * 2.0
        out_exact = exact_attention(x)
        out_rram = rram_attention(x)
        scale = np.max(np.abs(out_exact))
        assert np.max(np.abs(out_exact - out_rram)) / scale < 0.1

    def test_small_bert_encoder_with_engine_softmax(self, rng):
        config = BertConfig(
            num_layers=1, hidden=32, num_heads=4, intermediate=64, vocab_size=64, max_positions=16
        )
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        reference = BertEncoderModel(config, seed=1)
        hardware = BertEncoderModel(config, seed=1, softmax_fn=engine)
        ids = rng.integers(0, 64, size=(1, 8))
        out_ref = reference(ids)
        out_hw = hardware(ids)
        assert out_ref.shape == out_hw.shape
        correlation = np.corrcoef(out_ref.ravel(), out_hw.ravel())[0, 1]
        assert correlation > 0.99


class TestFunctionalVsCycleModelAgreement:
    """The fast functional softmax and the crossbar-level engine must agree."""

    def test_agreement_on_generated_attention_scores(self):
        generator = AttentionScoreGenerator(CNEWS_PROFILE, seed=11)
        scores = generator.rows(6, 24)
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        functional = FixedPointSoftmax(CNEWS_FORMAT)
        np.testing.assert_array_equal(engine.softmax(scores), functional(scores))

    def test_classification_task_same_result_with_either_model(self):
        task = ClassificationTask(CNEWS_PROFILE, num_examples=6, seq_len=12, seed=5)
        functional_acc = task.evaluate(FixedPointSoftmax(CNEWS_FORMAT)).accuracy
        engine_acc = task.evaluate(
            RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        ).accuracy
        assert functional_acc == pytest.approx(engine_acc)


class TestCrossbarAttentionMatmul:
    """Analog crossbar GEMMs feeding the softmax engine, end to end."""

    def test_single_head_attention_on_crossbars(self, rng):
        head_dim, seq_len = 16, 12
        engine = MatMulEngine(
            MatMulEngineConfig(crossbar_rows=16, crossbar_cols=16, adc_bits=10, num_tiles=4)
        )
        softmax_engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        q = rng.normal(size=(seq_len, head_dim))
        k = rng.normal(size=(seq_len, head_dim))
        v = rng.normal(size=(seq_len, head_dim))

        # K^T and V are written into tile banks once; all of Q's rows then
        # stream through each bank in one batched VMM pass per tile, and the
        # whole score matrix goes through the softmax engine in one batch.
        key_operand = engine.program_operand(k.T)
        value_operand = engine.program_operand(v)
        scores_analog = engine.matmul(q, key_operand) / np.sqrt(head_dim)
        weights = softmax_engine.softmax(scores_analog)
        context_analog = engine.matmul(weights, value_operand)

        scores_exact = q @ k.T / np.sqrt(head_dim)
        context_exact = exact_softmax(scores_exact) @ v

        correlation = np.corrcoef(context_analog.ravel(), context_exact.ravel())[0, 1]
        assert correlation > 0.9
        # both engines expose what the run cost
        assert engine.access_stats.vmm_ops == 2 * seq_len
        assert softmax_engine.access_stats.rows == seq_len


class TestWorkloadToAcceleratorFlow:
    def test_star_faster_and_leaner_than_sequence_square_growth(self):
        star = STARAccelerator()
        short = star.cost_report(BertWorkload(seq_len=128))
        long = star.cost_report(BertWorkload(seq_len=256))
        # ops grow faster than latency degrades efficiency dramatically
        assert long.latency_s > short.latency_s
        assert long.operations > short.operations
        assert 0.3 < long.computing_efficiency_gops_per_watt / short.computing_efficiency_gops_per_watt < 3.0

    def test_format_choice_flows_from_bitwidth_analysis(self):
        from repro.analysis.bitwidth import BitwidthAnalyzer

        requirement = BitwidthAnalyzer(num_rows=64).analyze(CNEWS_PROFILE)
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=requirement.fmt))
        scores = AttentionScoreGenerator(CNEWS_PROFILE, seed=3).rows(4, 16)
        probs = engine.softmax(scores)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
