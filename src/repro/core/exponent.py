"""The exponential unit of the softmax engine (Fig. 2 of the paper).

Three crossbars and a counter bank cooperate:

* a **CAM crossbar** stores every representable ``x_max - x_i`` magnitude
  code; searching a difference code returns a one-hot match vector (a miss
  means the difference is so large that its exponential rounds to zero);
* a **LUT crossbar** stores ``round(e^{-d} * 2^m) * 2^{-m}`` per row; the
  match vector selects the row, and the read-out word *is* the exponential
  of the input;
* the **counter bank** accumulates how many inputs matched each row;
* a **VMM crossbar** storing the very same exponential values turns the
  final counter histogram into the softmax denominator
  ``sum_j e^{x_j - x_max}`` in a single analog pass.

With ideal devices the unit's numerics are exactly those of
:class:`repro.nn.softmax_models.FixedPointSoftmax`; the noise configuration
lets the E9 ablation perturb the LUT readout and the analog summation.

Both :meth:`ExponentialUnit.process` (one row) and
:meth:`ExponentialUnit.process_batch` (a whole code block) are functionally
*pure* with ideal noise: the histogram is computed per call instead of
accumulating in shared :class:`~repro.core.counter.CounterBank` registers,
so concurrent calls on one unit cannot corrupt each other's numerics.  Two
caveats: the debug tally ``cam.search_count`` is still bumped without
synchronisation (concurrent callers may undercount it — the authoritative
access accounting is the engine-level
:class:`~repro.core.access_stats.AccessStats`), and with non-ideal noise
the random stream is inherently stateful, so Monte-Carlo sweeps should use
one unit per worker.  The counter bank and crossbar objects remain the
cost/area models.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.core.access_stats import AccessStats
from repro.core.config import SoftmaxEngineConfig
from repro.core.counter import CounterBank
from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.rram.converters import ADC, DAC
from repro.rram.lut import LUTConfig, LUTCrossbar, exponential_lut_entries
from repro.rram.noise import NoiseModel

__all__ = ["ExponentResult", "ExponentBatchResult", "ExponentialUnit"]


@dataclass(frozen=True)
class ExponentResult:
    """Output of the exponential unit for one row of differences.

    Attributes
    ----------
    exponentials:
        ``e^{x_i - x_max}`` per element, quantised to the LUT grid (zero for
        CAM misses).
    denominator:
        ``sum_j e^{x_j - x_max}`` as produced by the VMM crossbar.
    histogram:
        Final counter values (matches per representable level).
    misses:
        Number of inputs whose difference exceeded the stored range.
    """

    exponentials: np.ndarray
    denominator: float
    histogram: np.ndarray
    misses: int


class ExponentBatchResult:
    """Output of the exponential unit for a ``(num_rows, n)`` code block.

    ``exponentials`` and ``histograms`` keep one row per input row;
    ``denominators`` / ``misses`` are per-row vectors.  ``counted`` is the
    total number of counter increments the block caused (elements landing on
    a level with a non-zero LUT entry).  ``histograms`` is computed lazily
    (and cached) from the codes unless the unit had to materialize it for
    counter-saturation handling — the softmax hot path never reads it.
    """

    def __init__(
        self,
        unit: "ExponentialUnit",
        codes: np.ndarray,
        exponentials: np.ndarray,
        denominators: np.ndarray,
        misses: np.ndarray,
        counted: int,
        histograms: np.ndarray | None = None,
    ) -> None:
        self._unit = unit
        self._codes = codes
        self.exponentials = exponentials
        self.denominators = denominators
        self.misses = misses
        self.counted = counted
        if histograms is not None:
            self.histograms = histograms

    @cached_property
    def histograms(self) -> np.ndarray:
        """Saturating per-row counter histograms (matches per level)."""
        return self._unit._histograms(self._codes)


class ExponentialUnit:
    """Functional and cost model of the CAM + LUT + counter + VMM unit."""

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        cfg = self.config
        fmt = cfg.fmt

        # The CAM search of this unit is modelled ideal on the functional
        # path: a matchline flip here selects a neighbouring LUT row, which
        # is indistinguishable from the analog LUT/VMM read perturbations
        # that cfg.noise already injects, so only cfg.cam_search_error_rate
        # of the CAM/SUB stage (where a flip moves x_max) is simulated
        # explicitly.
        self.cam = CAMCrossbar(
            CAMConfig(rows=cfg.exp_rows, bits=fmt.magnitude_bits, seed=cfg.cam_seed + 1)
        )
        stored_levels = min(cfg.exp_rows, fmt.num_levels)
        self._stored_levels = stored_levels
        self.cam.program_codes(np.arange(stored_levels, dtype=np.int64))

        self.lut = LUTCrossbar(
            LUTConfig(
                rows=cfg.exp_rows,
                value_bits=cfg.lut_value_bits,
                frac_bits=cfg.lut_frac_bits,
            )
        )
        arguments = -np.arange(stored_levels, dtype=np.float64) * fmt.resolution
        self._lut_values = exponential_lut_entries(arguments, cfg.lut_frac_bits)
        self.lut.program_values(self._lut_values)
        # one trailing zero entry so a clipped gather maps CAM misses to 0.0
        self._lut_padded = np.append(self._lut_values, 0.0)

        # Only levels whose LUT entry is non-zero need a counter: rows whose
        # exponential already rounds to zero contribute nothing to the
        # denominator, so a match there never has to be counted.  With m = 4
        # this is ~16-32 counters instead of one per CAM row.
        self._active_levels = int(np.count_nonzero(self._lut_values))
        self.counters = CounterBank(
            num_counters=max(1, self._active_levels), bits=cfg.counter_bits
        )
        self.noise = NoiseModel(cfg.noise)
        self._area_model = CrossbarAreaModel()
        # the VMM crossbar's ADC must cover the sum's dynamic range; 10 bits
        # is enough for sequence lengths up to the counters' capacity
        self._vmm_adc = ADC(bits=10)
        self._vmm_dac = DAC(bits=cfg.counter_bits)

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    @property
    def lut_values(self) -> np.ndarray:
        """The quantised exponential table (index = difference code)."""
        return self._lut_values.copy()

    @property
    def stored_levels(self) -> int:
        """Number of difference codes the CAM/LUT pair stores."""
        return self._stored_levels

    @property
    def active_levels(self) -> int:
        """Levels with a non-zero LUT entry (the ones that own a counter)."""
        return self._active_levels

    def _validated_codes(self, difference_codes: np.ndarray, ndim: int) -> np.ndarray:
        codes = np.asarray(difference_codes)
        if not np.issubdtype(codes.dtype, np.integer):
            codes = codes.astype(np.int64)
        if ndim == 1:
            codes = codes.ravel()
        elif codes.ndim != 2:
            raise ValueError(
                f"difference_codes must be a 2D (num_rows, n) block, got shape {codes.shape}"
            )
        if codes.size and np.any(codes < 0):
            raise ValueError("difference codes must be non-negative magnitudes")
        return codes

    def _lookup(self, codes: np.ndarray) -> np.ndarray:
        """LUT exponentials for a code array of any shape (misses read 0.0).

        A clipped gather: every out-of-range code lands on the padded zero
        entry, exactly what a CAM miss reads out.
        """
        return self._lut_padded.take(codes, mode="clip")

    def _perturbed(self, values: np.ndarray) -> np.ndarray:
        """Analog read noise, skipping the defensive copy on the ideal path."""
        if self.noise.config.read_noise_sigma > 0.0:
            return self.noise.perturb_current(values)
        return values

    def _histograms(self, codes: np.ndarray) -> np.ndarray:
        """Saturating per-row counter histograms of a ``(num_rows, n)`` block.

        Pure computation of what the counter bank holds after the block:
        matches on levels whose LUT entry is zero are never counted (they
        would multiply a zero in the summation), and each counter saturates
        at its width.  The searches themselves are accounted by the caller.
        """
        counts = self.cam.search_histograms(
            codes, self.counters.num_counters, count=False
        )
        return np.minimum(counts, self.counters.max_count)

    def process(self, difference_codes: np.ndarray) -> ExponentResult:
        """Exponentials and denominator for one row of difference codes."""
        codes = self._validated_codes(difference_codes, ndim=1)
        if codes.size < 1:
            raise ValueError("difference_codes must not be empty")

        # analog LUT readout noise (zero in the ideal configuration)
        exponentials = self.noise.perturb_current(self._lookup(codes))

        self.cam.search_count += codes.size
        histogram = self._histograms(codes[None, :])[0]

        denominator = float(histogram @ self._lut_values[: self.counters.num_counters])
        denominator = float(self.noise.perturb_current(np.asarray([denominator]))[0])

        return ExponentResult(
            exponentials=exponentials,
            denominator=denominator,
            histogram=histogram,
            misses=int(np.count_nonzero(codes >= self._stored_levels)),
        )

    def process_batch(self, difference_codes: np.ndarray) -> ExponentBatchResult:
        """Exponentials and denominators for a ``(num_rows, n)`` code block.

        Fully vectorized — per-row histograms come from one offset
        ``np.bincount`` (:meth:`repro.rram.cam.CAMCrossbar.search_histograms`)
        and denominators from one multiply-sum.  Bit-identical to calling
        :meth:`process` row by row under ideal noise: every intermediate is
        an exact multiple of the LUT resolution, so summation order cannot
        change the result.  Under non-ideal noise the perturbations are
        drawn for the whole block at once (statistically equivalent, not
        draw-for-draw identical).
        """
        codes = self._validated_codes(difference_codes, ndim=2)
        num_rows, seq_len = codes.shape
        if num_rows and seq_len < 1:
            raise ValueError("difference_codes rows must not be empty")
        if num_rows == 0:
            return ExponentBatchResult(
                unit=self,
                codes=codes,
                exponentials=np.zeros_like(codes, dtype=np.float64),
                denominators=np.zeros(0, dtype=np.float64),
                misses=np.zeros(0, dtype=np.int64),
                counted=0,
                histograms=np.zeros((0, self.counters.num_counters), dtype=np.int64),
            )

        raw = self._lookup(codes)
        self.cam.search_count += codes.size
        # stats without per-element bookkeeping: a non-zero readout is
        # exactly an element that bumps a counter (code < active_levels)
        if int(codes.max()) < self._stored_levels:
            misses = np.zeros(num_rows, dtype=np.int64)
        else:
            misses = np.count_nonzero(codes >= self._stored_levels, axis=-1)
        counted = int(np.count_nonzero(raw))

        histograms: np.ndarray | None = None
        if seq_len <= self.counters.max_count:
            # no counter can saturate, so the VMM result equals the plain sum
            # of the (clean) LUT readouts: every term is an exact multiple of
            # 2^-m, making this bit-identical to the histogram @ LUT product
            denominators = raw.sum(axis=-1)
        else:
            histograms = self._histograms(codes)
            denominators = (
                histograms * self._lut_values[None, : self.counters.num_counters]
            ).sum(axis=-1)

        exponentials = self._perturbed(raw)
        denominators = self._perturbed(denominators)

        return ExponentBatchResult(
            unit=self,
            codes=codes,
            exponentials=exponentials,
            denominators=denominators,
            misses=misses,
            counted=counted,
            histograms=histograms,
        )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """CAM + LUT + VMM crossbars, counters, and the VMM converters."""
        cfg = self.config
        cam_area = self._area_model.cam_crossbar_area_um2(
            cfg.exp_rows, cfg.fmt.magnitude_bits
        )
        lut_area = self._area_model.lut_crossbar_area_um2(cfg.exp_rows, cfg.lut_value_bits)
        vmm_area = self._area_model.vmm_crossbar_area_um2(
            cfg.exp_rows, cfg.lut_value_bits, adc=self._vmm_adc, dac=self._vmm_dac, adc_share=cfg.lut_value_bits
        )
        return cam_area + lut_area + vmm_area + self.counters.area_um2()

    def element_latency_s(self) -> float:
        """Latency of one element: CAM search then LUT read (counter overlaps)."""
        return self.cam.search_latency_s() + self.lut.read_latency_s()

    def element_energy_j(self) -> float:
        """Energy of one element: CAM search + LUT read + counter increment."""
        return (
            self.cam.search_energy_j()
            + self.lut.read_energy_j()
            + self.counters.increment_energy_j()
        )

    def summation_latency_s(self) -> float:
        """Latency of the single VMM pass producing the denominator."""
        return (
            self._vmm_dac.latency_s
            + self.lut.config.device.read_pulse_s
            + self._vmm_adc.latency_s
        )

    def summation_energy_j(self) -> float:
        """Energy of the single VMM pass producing the denominator."""
        cfg = self.config
        v = self.lut.config.device.read_voltage_v
        g_mid = 0.5 * (
            1.0 / self.lut.config.device.r_on_ohm + 1.0 / self.lut.config.device.r_off_ohm
        )
        array = cfg.exp_rows * cfg.lut_value_bits * v * v * g_mid * self.lut.config.device.read_pulse_s
        dacs = cfg.exp_rows * self._vmm_dac.energy_per_conversion_j
        adc = self._vmm_adc.energy_per_conversion_j
        return array + dacs + adc

    def energy_j_of(self, stats: AccessStats) -> float:
        """Energy of the accesses recorded in ``stats``."""
        return (
            stats.exp_cam_searches * self.cam.search_energy_j()
            + stats.lut_reads * self.lut.read_energy_j()
            + stats.counter_increments * self.counters.increment_energy_j()
            + stats.vmm_passes * self.summation_energy_j()
        )

    def latency_s_of(self, stats: AccessStats) -> float:
        """Serial latency of the accesses recorded in ``stats``.

        Counter increments overlap the CAM searches, so only the search,
        LUT-read and VMM-pass times appear.
        """
        return (
            stats.exp_cam_searches * self.cam.search_latency_s()
            + stats.lut_reads * self.lut.read_latency_s()
            + stats.vmm_passes * self.summation_latency_s()
        )

    def row_latency_s(self, seq_len: int) -> float:
        """Latency of the exponential stage for one row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return self.latency_s_of(AccessStats.for_block(1, seq_len))

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of the exponential stage for one row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return self.energy_j_of(AccessStats.for_block(1, seq_len))

    def power_w(self) -> float:
        """Average power while continuously processing elements."""
        return self.element_energy_j() / self.element_latency_s()
