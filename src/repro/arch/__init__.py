"""Architecture-level cost aggregation: area models, cost reports, comparisons."""

from repro.arch.area import CrossbarAreaModel, rram_cell_area_um2
from repro.arch.report import ComparisonTable, CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel

__all__ = [
    "CrossbarAreaModel",
    "rram_cell_area_um2",
    "CostReport",
    "ComparisonTable",
    "SystemOverheadModel",
    "DEFAULT_SYSTEM_OVERHEAD",
]
