"""SLO classes and the deadline/power-aware serving control plane.

This module is the scheduling side of the serving control plane.  It adds
two things on top of the base simulator:

* **SLO tagging** — :class:`SLOClass` / :class:`SLOPolicy` assign service
  classes and relative deadlines to a request stream (randomly by traffic
  mix, or by sequence length — the standard interactive-vs-batch split).
* **The control-plane event loop** — :func:`run_control_plane`, a
  generalized serving loop that the simulator routes to whenever a run
  needs any of: an EDF-ordered queue, closed-loop clients (arrivals that
  react to completions), or an :class:`~repro.serving.autoscale.Autoscaler`
  parking and waking chips.  Plain open-loop FIFO runs without an
  autoscaler never come through here — they keep the original healthy
  path bit-for-bit.

Queue ordering
--------------

The queue is one fleet-wide heap.  Under FIFO the key is the arrival
counter (exactly the old list queue); under EDF it is the *absolute*
deadline ``arrival_s + deadline_s`` with the arrival counter breaking
ties, so untagged requests (deadline ``inf``) sort last in arrival order.
EDF here is non-preemptive batch-EDF: each dispatch takes the ``k`` most
urgent queued requests.  Batcher maturity (``max_wait_s``) is measured on
the current head — the most urgent request under EDF, the oldest under
FIFO (where the two coincide).

Closed-loop clients
-------------------

``N`` clients cycle think -> request -> completion -> think: a client's
next arrival is scheduled only when its previous request completes, so
arrivals throttle with the system (the machine-repair regime of
:class:`~repro.serving.theory.MachineRepairQueue`).  Requests are issued
in arrival order with consecutive indices until ``num_requests`` have
entered the system; later client cycles retire silently.

Autoscaling and power states
----------------------------

With an autoscaler the loop runs a periodic ``TICK`` controller.  Chips
move between three states — awake, waking, sleeping — with transitions
priced by the fleet's power-state model: parking starts a sleep interval
after the chip's drain latency, waking takes the wake latency (supply
ramp plus RRAM re-bias, deliberately not speedup-scaled) and charges the
wake energy to the report's :class:`~repro.serving.report.ScaleEvent`
ledger.  A parked chip is taken out of the dispatchable pool via the
server pool's online mask — the same mechanism fault injection uses —
and scale-down only ever parks *idle* chips: in-flight batches always
finish.  Sleep time is credited against idle leakage in the report's
energy accounting (sleeping chips pay retention power instead).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.events import ARRIVE, FREE, TICK, TIMEOUT, EventLoop, ServerPool
from repro.serving.arrivals import ClosedLoopClients, Request
from repro.serving.autoscale import Autoscaler
from repro.serving.batcher import DynamicBatcher
from repro.serving.fleet import ChipFleet
from repro.serving.report import BatchTable, RequestTable, ScaleEvent, ServingReport
from repro.utils.validation import require_positive

__all__ = ["SLOClass", "SLOPolicy", "run_control_plane"]

#: Deferred dispatch check (same convention as the base simulator).
_DISPATCH = TIMEOUT + 1

#: A chip finishing its wake transition.  Sorts *before* a simultaneous
#: batch completion / arrival, so the freshly awake chip is dispatchable
#: to everything at its ready instant.
_WAKE = FREE - 1

# chip power states of the autoscaled loop
_AWAKE, _WAKING, _SLEEPING = 0, 1, 2


@dataclass(frozen=True)
class SLOClass:
    """One service class: a name and a completion deadline.

    ``deadline_s`` is relative to arrival; ``inf`` declares a best-effort
    class with no deadline (it still gets per-class latency columns).
    """

    name: str
    deadline_s: float = math.inf

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SLO class needs a non-empty name")
        require_positive(self.deadline_s, "deadline_s")  # inf allowed


@dataclass(frozen=True)
class SLOPolicy:
    """An ordered set of SLO classes plus ways to tag a request stream.

    The class index in ``classes`` is the ``slo_class`` id written onto
    requests (and reported per class); by convention tighter-deadline
    classes come first.
    """

    classes: tuple[SLOClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("an SLO policy needs at least one class")
        object.__setattr__(self, "classes", tuple(self.classes))

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def deadline_of(self, slo_class: int) -> float:
        """Relative deadline of one class id."""
        return self.classes[slo_class].deadline_s

    def tag(self, request: Request, slo_class: int) -> Request:
        """One request re-tagged with a class id and its deadline."""
        return replace(
            request,
            slo_class=slo_class,
            deadline_s=self.classes[slo_class].deadline_s,
        )

    def tag_random(
        self,
        requests: Sequence[Request],
        weights: Sequence[float],
        seed: int = 0,
    ) -> list[Request]:
        """Tag a stream by traffic mix: class drawn i.i.d. with ``weights``.

        Seeded and independent of the arrival process, so the same stream
        tagged twice gets identical classes — FIFO-vs-EDF comparisons run
        the *same* tagged traffic through both policies.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_classes,):
            raise ValueError(
                f"got {weights.size} weights for {self.num_classes} classes"
            )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum above zero")
        rng = np.random.default_rng(seed)
        drawn = rng.choice(
            self.num_classes, size=len(requests), p=weights / weights.sum()
        )
        return [self.tag(r, int(c)) for r, c in zip(requests, drawn)]

    def tag_by_length(
        self, requests: Sequence[Request], boundaries: Sequence[int]
    ) -> list[Request]:
        """Tag a stream by sequence length — the interactive/batch split.

        ``boundaries`` are ascending length cutoffs, one fewer than there
        are classes: a request with ``seq_len <= boundaries[i]`` falls in
        class ``i``, anything longer in the last class.  Short requests
        land in the early (tight-deadline) classes, mirroring the serving
        reality that interactive traffic is short and latency-bound while
        long analytical queries tolerate queueing.
        """
        boundaries = [int(b) for b in boundaries]
        if len(boundaries) != self.num_classes - 1:
            raise ValueError(
                f"need {self.num_classes - 1} boundaries for "
                f"{self.num_classes} classes, got {len(boundaries)}"
            )
        if boundaries != sorted(boundaries):
            raise ValueError(f"boundaries must be ascending, got {boundaries}")
        tagged = []
        for request in requests:
            slo_class = self.num_classes - 1
            for i, bound in enumerate(boundaries):
                if request.seq_len <= bound:
                    slo_class = i
                    break
            tagged.append(self.tag(request, slo_class))
        return tagged


def run_control_plane(
    fleet: ChipFleet,
    batcher: DynamicBatcher,
    autoscaler: Autoscaler | None = None,
    requests: Sequence[Request] | None = None,
    clients: ClosedLoopClients | None = None,
    num_requests: int | None = None,
) -> tuple[ServingReport, EventLoop, int]:
    """Run the SLO/autoscale-aware serving loop.

    Pass either ``requests`` (open loop) or ``clients`` plus
    ``num_requests`` (closed loop).  Returns ``(report, loop,
    dispatch_calls)`` so the simulator can attach its usual profile.
    """
    closed = clients is not None
    if closed == (requests is not None):
        raise ValueError("pass exactly one of requests or clients")
    if closed:
        if num_requests is None:
            raise ValueError("closed-loop runs need num_requests")
        require_positive(num_requests, "num_requests")
        session = clients.session()
        outstanding = num_requests
    else:
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        ordered = sorted(requests, key=lambda r: r.arrival_s)
        outstanding = len(ordered)

    num_chips = fleet.num_chips
    loop = EventLoop()
    chips = ServerPool("chips", num_chips, speedups=fleet.speedups)
    edf = batcher.deadline_ordered
    timed_wait = batcher.max_wait_s > 0.0
    max_wait_s = batcher.max_wait_s
    schedule = loop.schedule
    batcher_ready = batcher.ready
    batcher_batch_of = batcher.batch_of
    batch_latency_s = fleet.batch_latency_s
    batch_energy_j = fleet.batch_energy_j

    # one fleet-wide heap: FIFO keys on the arrival counter, EDF on the
    # absolute deadline with the counter breaking ties deterministically
    queue: list[tuple[float, int, Request]] = []
    arrival_counter = 0
    queue_peak = 0
    queued: set[int] = set()

    # record columns (dispatch-time writes, as on the healthy path)
    req_index: list[int] = []
    req_arrival: list[float] = []
    req_batch: list[int] = []
    req_slo: list[int] = []
    req_deadline: list[float] = []
    b_chip: list[int] = []
    b_dispatch: list[float] = []
    b_completion: list[float] = []
    b_size: list[int] = []
    b_seq_len: list[int] = []
    b_energy: list[float] = []
    b_tier: list[int] = []
    dispatch_calls = 0

    # closed-loop issue state
    issued = 0
    client_of: dict[int, int] = {}
    # members of each chip's in-flight batch (one batch per chip)
    inflight: list[list[Request] | None] = [None] * num_chips

    # autoscaler state
    state = [_AWAKE] * num_chips
    sleep_start = [0.0] * num_chips  # meaningful while _SLEEPING
    sleep_intervals: list[list[tuple[float, float]]] = [[] for _ in range(num_chips)]
    scale_events: list[ScaleEvent] = []
    awake_count = num_chips
    awake_accum = 0.0  # awake chip-seconds integrated up to last_transition
    last_transition = 0.0
    window_busy = 0.0  # chips.busy_s at the previous tick
    window_awake = 0.0  # awake_accum at the previous tick

    def integrate_awake(time: float) -> None:
        nonlocal awake_accum, last_transition
        awake_accum += awake_count * (time - last_transition)
        last_transition = time

    if autoscaler is not None:
        for chip in range(autoscaler.initial(num_chips), num_chips):
            state[chip] = _SLEEPING
            chips.set_online(chip, False)
            awake_count -= 1
        schedule(autoscaler.interval_s, TICK)

    if closed:
        for client in range(clients.num_clients):
            schedule(session.next_think_s(), ARRIVE, client)
    else:
        for request in ordered:
            schedule(request.arrival_s, ARRIVE, request)

    def push(request: Request) -> None:
        nonlocal arrival_counter, queue_peak
        if edf:
            heapq.heappush(
                queue, (request.absolute_deadline_s, arrival_counter, request)
            )
        else:
            heapq.heappush(queue, (arrival_counter, 0, request))
        arrival_counter += 1
        queued.add(request.index)
        if len(queue) > queue_peak:
            queue_peak = len(queue)

    def admit(request: Request, time: float) -> None:
        push(request)
        if timed_wait:
            schedule(time + max_wait_s, TIMEOUT, request.index)
        schedule(time, _DISPATCH)

    def dispatch(time: float, force: bool = False) -> None:
        """Release ready batches to idle awake chips until either runs out."""
        while queue:
            head = queue[0][2]
            if not force and not batcher_ready(len(queue), time - head.arrival_s):
                return
            chip = chips.idle_server()  # skips parked chips
            if chip is None:
                return
            force = False
            batch = [
                heapq.heappop(queue)[2] for _ in range(batcher_batch_of(len(queue)))
            ]
            queued.difference_update(r.index for r in batch)
            seq_len = max(r.seq_len for r in batch)
            service = batch_latency_s(chip, len(batch), seq_len)
            # read before the chip's model (possibly shared) prices again
            tier = fleet.batch_tier(chip)
            completion = time + service
            chips.acquire(chip)
            chips.occupy(service)
            inflight[chip] = batch
            schedule(completion, FREE, chip)
            batch_row = len(b_chip)
            b_chip.append(chip)
            b_dispatch.append(time)
            b_completion.append(completion)
            b_size.append(len(batch))
            b_seq_len.append(seq_len)
            b_energy.append(batch_energy_j(chip, len(batch), seq_len))
            b_tier.append(tier)
            for r in batch:
                req_index.append(r.index)
                req_arrival.append(r.arrival_s)
                req_batch.append(batch_row)
                req_slo.append(r.slo_class)
                req_deadline.append(r.deadline_s)

    while loop:
        time, kind, data = loop.pop()
        if kind == ARRIVE:
            if closed:
                client = data[0]
                if issued >= num_requests:
                    continue  # traffic quota reached: the client retires
                request = Request(
                    index=issued,
                    arrival_s=time,
                    seq_len=session.next_seq_len(),
                    slo_class=session.slo_class_of(client),
                    deadline_s=session.deadline_of(client),
                )
                client_of[request.index] = client
                issued += 1
                admit(request, time)
            else:
                admit(data[0], time)
        elif kind == FREE:
            chip = data[0]
            members = inflight[chip]
            inflight[chip] = None
            chips.release(chip)
            outstanding -= len(members)
            if closed:
                for r in members:
                    client = client_of.pop(r.index)
                    if issued < num_requests:
                        schedule(time + session.next_think_s(), ARRIVE, client)
            schedule(time, _DISPATCH)
        elif kind == TIMEOUT:
            if data[0] in queued:
                schedule(time, _DISPATCH, data[0])
        elif kind == _WAKE:
            chip = data[0]
            integrate_awake(time)
            awake_count += 1
            state[chip] = _AWAKE
            chips.set_online(chip, True)
            schedule(time, _DISPATCH)
        elif kind == TICK:
            if outstanding <= 0:
                continue  # traffic resolved: the controller stops
            integrate_awake(time)
            awake_delta = awake_accum - window_awake
            busy_delta = chips.busy_s - window_busy
            window_awake = awake_accum
            window_busy = chips.busy_s
            utilization = busy_delta / awake_delta if awake_delta > 0 else 0.0
            active = sum(1 for s in state if s != _SLEEPING)
            delta = autoscaler.decide(utilization, len(queue), active)
            if delta > 0:
                allowed = min(delta, autoscaler.bound(num_chips) - active)
                for chip in range(num_chips):
                    if allowed <= 0:
                        break
                    if state[chip] != _SLEEPING:
                        continue
                    # the sleep interval ends at the wake *decision*: the
                    # ramp is priced as wake energy, not sleep leakage
                    sleep_intervals[chip].append((sleep_start[chip], time))
                    state[chip] = _WAKING
                    ready = time + fleet.wake_latency_s(chip)
                    scale_events.append(
                        ScaleEvent(
                            chip=chip,
                            time_s=time,
                            action="wake",
                            ready_s=ready,
                            energy_j=fleet.wake_energy_j(chip),
                        )
                    )
                    schedule(ready, _WAKE, chip)
                    allowed -= 1
            elif delta < 0:
                allowed = min(-delta, active - autoscaler.min_chips)
                # park from the top so low-indexed chips stay the stable core
                for chip in range(num_chips - 1, -1, -1):
                    if allowed <= 0:
                        break
                    if state[chip] != _AWAKE or not chips.idle[chip]:
                        continue  # never park a busy chip
                    state[chip] = _SLEEPING
                    chips.set_online(chip, False)
                    awake_count -= 1
                    entry = fleet.sleep_entry_latency_s(chip)
                    scale_events.append(
                        ScaleEvent(
                            chip=chip,
                            time_s=time,
                            action="sleep",
                            ready_s=time + entry,
                        )
                    )
                    sleep_start[chip] = time + entry
                    allowed -= 1
            schedule(time + autoscaler.interval_s, TICK)
        else:  # _DISPATCH
            dispatch_calls += 1
            dispatch(time, force=bool(data) and data[0] in queued)

    if not req_index:
        raise RuntimeError("control-plane run completed no requests")

    # assemble tables (batch-constant columns gathered from batch rows)
    chip_col = np.asarray(b_chip, dtype=np.int64)
    dispatch_col = np.asarray(b_dispatch, dtype=np.float64)
    completion_col = np.asarray(b_completion, dtype=np.float64)
    size_col = np.asarray(b_size, dtype=np.int64)
    seq_col = np.asarray(b_seq_len, dtype=np.int64)
    batch_of_request = np.asarray(req_batch, dtype=np.int64)
    request_table = RequestTable(
        np.asarray(req_index, dtype=np.int64),
        np.asarray(req_arrival, dtype=np.float64),
        dispatch_col[batch_of_request],
        completion_col[batch_of_request],
        chip_col[batch_of_request],
        batch_of_request,
        size_col[batch_of_request],
        seq_col[batch_of_request],
        np.zeros(len(req_index), dtype=np.int64),
        np.asarray(req_slo, dtype=np.int64),
        np.asarray(req_deadline, dtype=np.float64),
    )
    batch_table = BatchTable(
        np.arange(len(b_chip), dtype=np.int64),
        chip_col,
        dispatch_col,
        completion_col,
        size_col,
        seq_col,
        np.asarray(b_energy, dtype=np.float64),
        np.asarray(b_tier, dtype=np.int64),
    )

    chip_sleep_s: tuple[float, ...] = ()
    chip_sleep_power_w: tuple[float, ...] = ()
    if autoscaler is not None:
        window_start = float(request_table.arrival_s.min())
        window_end = float(request_table.completion_s.max())
        for chip in range(num_chips):
            if state[chip] == _SLEEPING:
                sleep_intervals[chip].append((sleep_start[chip], window_end))
        # clip every sleep interval to the observation window so sleep
        # credit never exceeds the makespan the report charges idle over
        chip_sleep_s = tuple(
            sum(
                max(0.0, min(end, window_end) - max(start, window_start))
                for start, end in sleep_intervals[chip]
            )
            for chip in range(num_chips)
        )
        chip_sleep_power_w = tuple(
            fleet.sleep_power_w(chip) for chip in range(num_chips)
        )

    busy = (
        np.bincount(
            batch_table.chip, weights=batch_table.service_s, minlength=num_chips
        )
        if len(batch_table)
        else np.zeros(num_chips)
    )
    report = ServingReport(
        num_chips=num_chips,
        requests=request_table,
        batches=batch_table,
        chip_busy_s=tuple(busy),
        queue_peak=queue_peak,
        chip_idle_power_w=tuple(
            fleet.idle_power_w(chip) for chip in range(num_chips)
        ),
        scale_events=tuple(scale_events),
        chip_sleep_s=chip_sleep_s,
        chip_sleep_power_w=chip_sleep_power_w,
        autoscale_enabled=autoscaler is not None,
    )
    return report, loop, dispatch_calls
