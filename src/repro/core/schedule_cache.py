"""Cached executed-schedule templates: high-fidelity pricing at dispatch rate.

A cold :meth:`~repro.core.accelerator.STARAccelerator.executed_model_schedule`
run simulates every attention row of every encoder layer through the
heap-based event executor — milliseconds to seconds of wall clock per
``(batch, seq_len)`` shape, orders of magnitude too slow to sit inside a
serving dispatch loop that prices tens of thousands of batches per second.
This module makes the executed path cheap enough to *sample* at fleet
scale:

* :func:`build_schedule_template` runs the executed schedule **once**,
  jitter-free, and captures a :class:`ScheduleTemplate` — the bit-exact
  jitter-free makespan plus the steady-state structure jitter acts on
  (the aggregate per-row stage intervals and the row count of the
  pipelined phase).
* :meth:`ScheduleTemplate.resample` then prices one jittered dispatch as
  a vectorized recombination: all per-layer lognormal stage factors come
  from **one** ``Generator.standard_normal`` call and shift each layer's
  steady-state bottleneck interval analytically — no event heap, no
  per-row loop — typically >1000x faster than the cold run it replaces.
* :class:`ScheduleTemplateCache` memoizes templates per
  ``(chip-config fingerprint, batch_size, seq_len)`` so a fleet (and
  every sweep over the same configuration) pays each cold build exactly
  once.

Resampling model
----------------

The executed attention pipeline settles into a steady state where rows
leave at the bottleneck stage's aggregate interval: the analytical model
writes the makespan as ``fill + (num_rows - 1) * bottleneck`` and the
event-driven execution reproduces it within the pooling granularity.  A
per-layer lognormal factor matrix ``F`` (one row per encoder layer, one
column per pipeline stage) shifts layer ``l``'s steady interval from
``max_k(steady_k)`` to ``max_k(steady_k * F[l, k])``, so the template
prices the layer's slowdown as ``(num_rows - 1)`` times that interval
growth, clipped below at zero.  The clip is the physical reading: in a
deeply pipelined system the makespan is a *max* over a huge ensemble of
row paths, so a stage that momentarily speeds up hands the critical path
to a sibling stage (no net gain), while a slowdown of the bottleneck adds
directly.  Two exact properties fall out by construction and are pinned
by the property suite:

* with unit factors (``sigma = 0``) the resampled latency **is** the
  cold jitter-free executed latency, bit-exactly;
* every jittered draw is bounded below by the jitter-free critical path.

Templates are plain picklable objects (floats and one small tuple), so
the sharded serving simulator builds them once in the parent process and
ships them to workers next to the tabulated pricing tables.

Fingerprint & rebuild conditions
--------------------------------

:func:`chip_config_fingerprint` keys a template by everything that moves
the executed timing: the accelerator type, the served
:class:`~repro.nn.bert.BertConfig`, the chip's
:class:`~repro.core.config.STARConfig`, its softmax-engine count, the
system-overhead model and the batch-cost model.  ``schedule`` and
``jitter`` are deliberately **excluded**: templates are always built
jitter-free on the executed path, whatever the source accelerator was
configured with, so an analytical-schedule fleet model and its executed
twin share one template.  A template is rebuilt only when the fingerprint
or the ``(batch_size, seq_len)`` shape changes — per-dispatch jitter
never invalidates it.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "NUM_STAGES",
    "ScheduleTemplate",
    "ScheduleTemplateCache",
    "build_schedule_template",
    "chip_config_fingerprint",
]

#: Pipeline stages of the attention chain (score GEMM, softmax, context GEMM).
NUM_STAGES = 3


class ScheduleTemplate:
    """One jitter-free executed schedule, frozen for per-dispatch resampling.

    ``base_latency_s`` is the cold executed whole-model latency (bit-exact);
    ``steady_row_s`` the aggregate per-row intervals of the three attention
    stages (already divided by the stream/engine counts, i.e. what the
    pipeline's steady state drains at); ``num_rows`` the rows of one
    layer's pipelined phase; ``energy_j`` the batch's active energy, which
    is schedule-independent (the serialized-equivalent conversion energy)
    and carried for standalone consumers.
    """

    __slots__ = (
        "batch_size",
        "seq_len",
        "num_layers",
        "num_rows",
        "base_latency_s",
        "energy_j",
        "steady_row_s",
        "_steady",
        "_bottleneck",
    )

    def __init__(
        self,
        batch_size: int,
        seq_len: int,
        num_layers: int,
        num_rows: int,
        base_latency_s: float,
        energy_j: float,
        steady_row_s: tuple[float, float, float],
    ) -> None:
        require_positive(batch_size, "batch_size")
        require_positive(seq_len, "seq_len")
        require_positive(num_layers, "num_layers")
        require_positive(num_rows, "num_rows")
        require_positive(base_latency_s, "base_latency_s")
        require_non_negative(energy_j, "energy_j")
        if len(steady_row_s) != NUM_STAGES:
            raise ValueError(
                f"steady_row_s needs one interval per stage "
                f"({NUM_STAGES}), got {len(steady_row_s)}"
            )
        self.batch_size = int(batch_size)
        self.seq_len = int(seq_len)
        self.num_layers = int(num_layers)
        self.num_rows = int(num_rows)
        self.base_latency_s = float(base_latency_s)
        self.energy_j = float(energy_j)
        self.steady_row_s = tuple(float(s) for s in steady_row_s)
        self._steady = np.asarray(self.steady_row_s, dtype=np.float64)
        self._bottleneck = float(self._steady.max())

    def __getstate__(self):
        return (
            self.batch_size,
            self.seq_len,
            self.num_layers,
            self.num_rows,
            self.base_latency_s,
            self.energy_j,
            self.steady_row_s,
        )

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    def __repr__(self) -> str:
        return (
            f"ScheduleTemplate(batch={self.batch_size}, seq_len={self.seq_len}, "
            f"layers={self.num_layers}, base={self.base_latency_s:.6g}s)"
        )

    @property
    def bottleneck_row_s(self) -> float:
        """Steady-state interval of the jitter-free critical stage."""
        return self._bottleneck

    def sample_latency_s(self, factors: np.ndarray) -> float:
        """Latency under one per-layer/per-stage factor matrix.

        ``factors`` has shape ``(num_layers, NUM_STAGES)``; a unit matrix
        reproduces :attr:`base_latency_s` exactly.  Each layer contributes
        ``(num_rows - 1)`` times the growth of its steady bottleneck
        interval, clipped below at zero (see the module docstring for why
        speedups are absorbed and slowdowns add).
        """
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.num_layers, NUM_STAGES):
            raise ValueError(
                f"factors must have shape ({self.num_layers}, {NUM_STAGES}), "
                f"got {factors.shape}"
            )
        shifted = (factors * self._steady).max(axis=1)
        delta = (self.num_rows - 1) * np.maximum(shifted - self._bottleneck, 0.0)
        return self.base_latency_s + float(delta.sum())

    def resample(self, rng: np.random.Generator, sigma: float) -> float:
        """One jittered dispatch latency: draw all layer factors at once.

        The whole draw is a single ``standard_normal`` call of
        ``num_layers x NUM_STAGES`` deviates — the vectorized stand-in for
        re-running the event executor with per-layer jitter streams.
        ``sigma = 0`` returns the bit-exact jitter-free latency without
        touching the generator, so jitter-off runs stay bit-deterministic.
        """
        require_non_negative(sigma, "sigma")
        if sigma == 0.0:
            return self.base_latency_s
        factors = np.exp(
            sigma * rng.standard_normal((self.num_layers, NUM_STAGES))
        )
        return self.sample_latency_s(factors)


def chip_config_fingerprint(accelerator, bert_config) -> tuple:
    """Hashable identity of everything that moves an executed schedule.

    Deliberately excludes ``schedule`` and ``jitter``: templates are
    always built jitter-free on the executed path, so accelerators
    differing only in those knobs share templates.
    """
    return (
        type(accelerator),
        bert_config,
        accelerator.config,
        accelerator.num_softmax_engines,
        accelerator.system_overhead,
        accelerator.batch_cost,
    )


def _executed_jitter_free(accelerator):
    """The accelerator re-cast onto the executed, jitter-free path."""
    from repro.core.accelerator import STARAccelerator

    if (
        isinstance(accelerator, STARAccelerator)
        and accelerator.schedule == "executed"
        and (accelerator.jitter is None or accelerator.jitter.sigma == 0.0)
    ):
        return accelerator
    return STARAccelerator(
        resources=accelerator.resources,
        schedule="executed",
        batch_cost=accelerator.batch_cost,
    )


def build_schedule_template(accelerator, workload) -> ScheduleTemplate:
    """Run the executed schedule once, jitter-free, and freeze the result.

    The cold run happens on a jitter-free executed twin of ``accelerator``
    (sharing its :class:`~repro.core.accelerator.ChipResources` and batch
    cost), so the captured ``base_latency_s`` is bit-exactly what
    ``executed_model_schedule`` reports without jitter.  Energy comes from
    the analytic :meth:`~repro.core.accelerator.STARAccelerator.request_timing`
    — active energy is charged at the serialized-equivalent conversion
    rate and is schedule-independent, so no second executed run is needed.
    """
    from repro.core.accelerator import STARAccelerator

    executed = _executed_jitter_free(accelerator)
    schedule = executed.executed_model_schedule(workload)
    timing = executed.attention_stage_timing(workload)
    analytic = STARAccelerator(
        resources=executed.resources, batch_cost=executed.batch_cost
    )
    energy_j = analytic.request_timing(workload).energy_j
    return ScheduleTemplate(
        batch_size=workload.batch_size,
        seq_len=workload.seq_len,
        num_layers=workload.config.num_layers,
        num_rows=timing.num_rows,
        base_latency_s=schedule.total_latency_s,
        energy_j=energy_j,
        steady_row_s=(
            timing.score_row_s,
            timing.softmax_row_s,
            timing.context_row_s,
        ),
    )


class ScheduleTemplateCache:
    """Bounded LRU cache of templates keyed by fingerprint and shape.

    Mirrors :class:`~repro.serving.fleet.PricingCache`: one instance can be
    shared across every tiered service model of a fleet (and every fleet of
    a sweep), with ``hits`` / ``misses`` counters the profiling layer
    surfaces.  Bounded so long sweeps over many shapes cannot grow memory
    without limit — though templates are small, cold builds are not, so
    the default bound is generous.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        require_positive(maxsize, "maxsize")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, ScheduleTemplate] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get_or_build(self, accelerator, workload) -> ScheduleTemplate:
        """The cached template for this chip/shape, cold-building on miss."""
        key = (
            chip_config_fingerprint(accelerator, workload.config),
            workload.batch_size,
            workload.seq_len,
        )
        template = self._entries.get(key)
        if template is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return template
        self.misses += 1
        template = build_schedule_template(accelerator, workload)
        self._entries[key] = template
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return template


#: The default cache shared by every TieredServiceModel instance.
SHARED_TEMPLATE_CACHE = ScheduleTemplateCache()
