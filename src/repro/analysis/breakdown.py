"""Latency breakdowns: the GPU motivation (E1) and STAR's executed schedule.

Two analyzers live here:

* :class:`LatencyBreakdownAnalyzer` — the experiment behind E1: run the GPU
  inference model across a sweep of sequence lengths and report, for each
  length, the share of execution time spent in softmax.  The paper's
  headline numbers are that softmax overtakes matrix multiplication at
  sequence length 512 and reaches 59.20 % of BERT-base execution time there.
* :class:`StarScheduleAnalyzer` — the executed counterpart on the STAR
  side: for each sequence length, run the attention rows through the
  event-driven :class:`~repro.core.scheduler.PipelineExecutor` and compare
  the measured pipeline latency, steady-state interval and softmax-engine
  occupancy against the closed-form
  :class:`~repro.core.pipeline.AttentionPipeline` prediction.  This is
  where E7-style speedups come from execution rather than formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel
from repro.core.accelerator import STARAccelerator
from repro.nn.bert import BertConfig, BERT_BASE, BertWorkload
from repro.workloads.sweeps import INTRO_SEQUENCE_SWEEP, SequenceLengthSweep

__all__ = [
    "BreakdownRow",
    "LatencyBreakdownAnalyzer",
    "StarScheduleRow",
    "StarScheduleAnalyzer",
]


@dataclass(frozen=True)
class BreakdownRow:
    """One row of the latency-breakdown table."""

    seq_len: int
    matmul_s: float
    softmax_s: float
    total_s: float
    softmax_share: float


class LatencyBreakdownAnalyzer:
    """Sweeps sequence length and reports the softmax share of GPU latency."""

    def __init__(
        self,
        gpu: GPUModel | None = None,
        bert_config: BertConfig = BERT_BASE,
        sweep: SequenceLengthSweep = INTRO_SEQUENCE_SWEEP,
    ) -> None:
        self.gpu = gpu or GPUModel()
        self.bert_config = bert_config
        self.sweep = sweep

    def row_for(self, seq_len: int) -> BreakdownRow:
        """Breakdown at one sequence length."""
        workload = BertWorkload(config=self.bert_config, seq_len=seq_len)
        breakdown = self.gpu.latency_breakdown(workload)
        return BreakdownRow(
            seq_len=seq_len,
            matmul_s=breakdown.matmul_s,
            softmax_s=breakdown.softmax_s,
            total_s=breakdown.total_s,
            softmax_share=breakdown.softmax_share,
        )

    def sweep_rows(self) -> list[BreakdownRow]:
        """Breakdown across the configured sequence-length sweep."""
        return [self.row_for(seq_len) for seq_len in self.sweep]

    def crossover_length(self) -> int | None:
        """First swept length at which softmax exceeds the matmul latency."""
        for row in self.sweep_rows():
            if row.softmax_share > 0.5:
                return row.seq_len
        return None

    def format_table(self) -> str:
        """Printable table matching the structure of the paper's observation."""
        lines = [f"{'seq_len':>8} {'matmul (ms)':>12} {'softmax (ms)':>13} {'softmax share':>14}"]
        for row in self.sweep_rows():
            lines.append(
                f"{row.seq_len:>8d} {row.matmul_s * 1e3:>12.3f} "
                f"{row.softmax_s * 1e3:>13.3f} {row.softmax_share * 100:>13.2f}%"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class StarScheduleRow:
    """Executed vs analytical attention-pipeline latency at one length."""

    seq_len: int
    analytical_s: float
    executed_s: float
    steady_interval_s: float
    softmax_utilization: float
    softmax_queue_peak: int

    @property
    def deviation(self) -> float:
        """Relative deviation of the executed latency from the prediction."""
        return abs(self.executed_s - self.analytical_s) / self.analytical_s


class StarScheduleAnalyzer:
    """Cross-validates STAR's executed attention schedule against the formulas."""

    def __init__(
        self,
        accelerator: STARAccelerator | None = None,
        bert_config: BertConfig = BERT_BASE,
        sweep: SequenceLengthSweep | tuple[int, ...] = (128, 256, 512),
        batch_size: int = 1,
    ) -> None:
        self.accelerator = accelerator or STARAccelerator()
        self.bert_config = bert_config
        self.sweep = sweep
        self.batch_size = batch_size

    def row_for(self, seq_len: int) -> StarScheduleRow:
        """Executed-vs-analytical comparison at one sequence length."""
        workload = BertWorkload(
            config=self.bert_config, seq_len=seq_len, batch_size=self.batch_size
        )
        star = self.accelerator
        analytical = star.pipeline.vector_grained_latency(
            star.attention_stage_timing(workload)
        )
        executed = star.executed_attention_schedule(workload, granularity="vector")
        return StarScheduleRow(
            seq_len=seq_len,
            analytical_s=analytical.total_latency_s,
            executed_s=executed.total_latency_s,
            steady_interval_s=executed.steady_state_interval_s,
            softmax_utilization=executed.utilization("softmax"),
            softmax_queue_peak=executed.queue_peaks["softmax"],
        )

    def sweep_rows(self) -> list[StarScheduleRow]:
        """Comparison across the configured sequence-length sweep."""
        return [self.row_for(seq_len) for seq_len in self.sweep]

    def format_table(self) -> str:
        """Printable executed-vs-analytical cross-validation table."""
        lines = [
            f"{'seq_len':>8} {'analytical (us)':>16} {'executed (us)':>14} "
            f"{'dev':>7} {'sm util':>8} {'sm queue':>9}"
        ]
        for row in self.sweep_rows():
            lines.append(
                f"{row.seq_len:>8d} {row.analytical_s * 1e6:>16.2f} "
                f"{row.executed_s * 1e6:>14.2f} {row.deviation * 100:>6.2f}% "
                f"{row.softmax_utilization * 100:>7.1f}% {row.softmax_queue_peak:>9d}"
            )
        return "\n".join(lines)
