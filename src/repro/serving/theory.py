"""Closed-form queueing theory the serving simulator is validated against.

In the single-chip, no-batching limit with Poisson arrivals and a
deterministic whole-model service time, the simulated system is exactly an
M/D/1 queue, so the Pollaczek–Khinchine formula predicts its steady-state
waiting time:

    W_q = lambda * E[S^2] / (2 * (1 - rho))          (general M/G/1)
        = rho * s / (2 * (1 - rho))                  (deterministic S = s)

The cross-validation suite drives the simulator at moderate utilization
and requires the measured mean wait to land within a few percent of this —
the serving-level analogue of the pipeline executor's closed-form
cross-checks.  :class:`MM1Queue` (exponential service) is included as the
pessimistic bracket: a deterministic server waits exactly half as long as
an exponential one, so a correct simulation must fall on the M/D/1 line,
not the M/M/1 one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["MD1Queue", "MM1Queue", "MachineRepairQueue"]


class _SingleServerQueue:
    """Shared derived quantities of a single-server queue at rate/service."""

    arrival_rate_rps: float
    service_s: float

    @property
    def utilization(self) -> float:
        """Offered load ``rho = lambda * s``."""
        return self.arrival_rate_rps * self.service_s

    @property
    def mean_wait_s(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def mean_latency_s(self) -> float:
        """Mean sojourn time: queueing wait plus service."""
        return self.mean_wait_s + self.service_s

    @property
    def mean_queue_len(self) -> float:
        """Mean number waiting (Little's law on the queue)."""
        return self.arrival_rate_rps * self.mean_wait_s

    @property
    def mean_in_system(self) -> float:
        """Mean number in the system (Little's law on the sojourn)."""
        return self.arrival_rate_rps * self.mean_latency_s

    def _check(self) -> None:
        require_positive(self.arrival_rate_rps, "arrival_rate_rps")
        require_positive(self.service_s, "service_s")
        if self.utilization >= 1.0:
            raise ValueError(
                f"queue is unstable: rho = {self.utilization:.3f} >= 1 "
                f"(rate {self.arrival_rate_rps} rps, service {self.service_s} s)"
            )


@dataclass(frozen=True)
class MD1Queue(_SingleServerQueue):
    """M/D/1: Poisson arrivals, deterministic service, one server."""

    arrival_rate_rps: float
    service_s: float

    def __post_init__(self) -> None:
        self._check()

    @property
    def mean_wait_s(self) -> float:
        """Pollaczek–Khinchine mean wait for deterministic service."""
        rho = self.utilization
        return rho * self.service_s / (2.0 * (1.0 - rho))


@dataclass(frozen=True)
class MM1Queue(_SingleServerQueue):
    """M/M/1: Poisson arrivals, exponential service, one server."""

    arrival_rate_rps: float
    service_s: float

    def __post_init__(self) -> None:
        self._check()

    @property
    def mean_wait_s(self) -> float:
        """Mean wait with exponential service — twice the M/D/1 wait."""
        rho = self.utilization
        return rho * self.service_s / (1.0 - rho)


@dataclass(frozen=True)
class MachineRepairQueue:
    """M/M/1//N — the closed machine-repair / interactive-system queue.

    ``num_clients`` users cycle between an exponential think phase (mean
    ``think_s``) and one exponential server (mean ``service_s``): exactly
    the steady state of :class:`~repro.serving.arrivals.ClosedLoopClients`
    driving a single chip with exponential service and no batching.  The
    finite population makes the system self-throttling — it is *always*
    stable, unlike the open-loop queues above — and fully solvable:

        p_n / p_0 = N! / (N - n)! * (s / Z)^n        (n clients at the server)

    from which throughput is ``X = (1 - p_0) / s`` (the server completes
    at rate ``1/s`` whenever busy) and the mean response time follows from
    the **interactive response-time law** — Little's law over the whole
    cycle: ``N = X * (R + Z)``, so ``R = N / X - Z``.  The closed-loop
    cross-validation suite pins the simulator to these formulas.
    """

    num_clients: int
    think_s: float
    service_s: float

    def __post_init__(self) -> None:
        require_positive(self.num_clients, "num_clients")
        require_positive(self.think_s, "think_s")
        require_positive(self.service_s, "service_s")

    def _probabilities(self) -> list[float]:
        """Steady-state ``p_n`` of ``n`` clients at the server (birth-death solve)."""
        ratio = self.service_s / self.think_s
        terms = [1.0]
        for n in range(1, self.num_clients + 1):
            terms.append(terms[-1] * (self.num_clients - n + 1) * ratio)
        total = sum(terms)
        return [term / total for term in terms]

    @property
    def utilization(self) -> float:
        """Server busy fraction ``1 - p_0`` (always below 1: closed loops saturate, never diverge)."""
        return 1.0 - self._probabilities()[0]

    @property
    def throughput_rps(self) -> float:
        """System throughput ``X = (1 - p_0) / s``."""
        return self.utilization / self.service_s

    @property
    def mean_latency_s(self) -> float:
        """Mean response time from the interactive law ``R = N / X - Z``."""
        return self.num_clients / self.throughput_rps - self.think_s

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay before service starts."""
        return self.mean_latency_s - self.service_s

    @property
    def mean_at_server(self) -> float:
        """Mean clients queued or in service (Little: ``X * R``)."""
        return self.throughput_rps * self.mean_latency_s

    @property
    def bottleneck_throughput_rps(self) -> float:
        """Asymptotic bound ``min(N / (Z + s), 1 / s)`` — the capacity ceiling.

        Small populations are think-limited (each client cycles every
        ``Z + s`` at best), large ones server-limited; the exact ``X``
        approaches whichever bound binds.
        """
        return min(
            self.num_clients / (self.think_s + self.service_s),
            1.0 / self.service_s,
        )
